package campaign

import (
	"bytes"
	"fmt"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/core"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/telemetry"
)

// AllocKind selects the allocator under the native or defended run.
type AllocKind uint8

const (
	// AllocHeap is the boundary-tag heap (heapsim.Heap).
	AllocHeap AllocKind = iota
	// AllocPool is the size-class pool allocator.
	AllocPool
)

// AllAllocators lists every allocator kind.
func AllAllocators() []AllocKind { return []AllocKind{AllocHeap, AllocPool} }

func (a AllocKind) String() string {
	switch a {
	case AllocHeap:
		return "heap"
	case AllocPool:
		return "pool"
	default:
		return fmt.Sprintf("AllocKind(%d)", uint8(a))
	}
}

// Mode is the defense posture of one matrix cell.
type Mode uint8

const (
	// ModeNative runs undefended over the raw allocator.
	ModeNative Mode = iota
	// ModeShadow runs under the offline shadow-memory analysis.
	ModeShadow
	// ModeDefended runs with the analysis-generated patches loaded.
	ModeDefended
)

func (m Mode) String() string {
	switch m {
	case ModeNative:
		return "native"
	case ModeShadow:
		return "shadow"
	case ModeDefended:
		return "defended"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Cell identifies one point of the execution matrix.
type Cell struct {
	Mode   Mode
	Alloc  AllocKind
	Engine prog.Engine
	Attack bool
	// Policy is the defense family of a defended cell (zero =
	// defense.FamilyHT, so HT-only matrices are unchanged).
	Policy defense.Family
}

func (c Cell) String() string {
	input := "benign"
	if c.Attack {
		input = "attack"
	}
	if c.Mode == ModeShadow {
		// Shadow analysis brings its own heap; the allocator axis does
		// not apply.
		return fmt.Sprintf("shadow/%v/%s", c.Engine, input)
	}
	s := fmt.Sprintf("%v/%v/%v/%s", c.Mode, c.Alloc, c.Engine, input)
	if c.Policy != defense.FamilyHT {
		// The policy suffix appears only off the default so HT-only
		// cell names (and every test pinned to them) stay stable.
		s += "/" + c.Policy.String()
	}
	return s
}

// Outcome is everything observable about one cell's run.
type Outcome struct {
	Cell   Cell
	Result *prog.Result `json:",omitempty"`
	// RunErr is a non-fault execution error (step exhaustion, setup
	// failure); faults live in Result.Fault.
	RunErr string `json:",omitempty"`
	// Panic is a recovered interpreter/allocator panic (native heap
	// metadata clobbered hard enough to trip the load guards).
	Panic string `json:",omitempty"`
	// Invariant is the first walker violation, if any.
	Invariant string `json:",omitempty"`
	// Checks is how many invariant audits ran during the cell.
	Checks uint64 `json:",omitempty"`
	// DefenseStats is set for defended cells.
	DefenseStats *defense.Stats `json:",omitempty"`
	// Warnings and PatchText are set for shadow cells.
	Warnings  []string `json:",omitempty"`
	PatchText string   `json:",omitempty"`
	// Telemetry is the cell's counter/event snapshot, set for defended
	// cells. The run is single-threaded and virtual-cycle-clocked, so
	// the snapshot is deterministic and participates in the engine
	// divergence signature.
	Telemetry *telemetry.Snapshot `json:",omitempty"`
}

// signature folds every cross-engine-comparable observable into one
// string: two engines run on the same cell coordinates must match it
// byte for byte.
func (o *Outcome) signature() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "err=%q panic=%q inv=%q checks=%d", o.RunErr, o.Panic, o.Invariant, o.Checks)
	if o.Result != nil {
		r := o.Result
		fault := ""
		if r.Fault != nil {
			fault = r.Fault.Error()
		}
		fmt.Fprintf(&b, " out=%x fault=%q steps=%d cycles=%d interp=%d enc=%d allocs=%d frees=%d byfn=%v",
			r.Output, fault, r.Steps, r.Cycles, r.InterpCycles, r.EncUpdates, r.Allocs, r.Frees, r.AllocsByFn)
	}
	if o.DefenseStats != nil {
		fmt.Fprintf(&b, " def=%+v", *o.DefenseStats)
	}
	if o.Telemetry != nil {
		b.WriteString(" tel=")
		if err := o.Telemetry.WriteJSON(&b); err != nil {
			fmt.Fprintf(&b, "<%v>", err)
		}
	}
	fmt.Fprintf(&b, " warn=%q patches=%q", o.Warnings, o.PatchText)
	return b.String()
}

// Failure is one oracle assertion that did not hold.
type Failure struct {
	Seed   uint64
	Kind   string
	Class  string
	Cell   string `json:",omitempty"`
	Detail string
}

// Failure classes.
const (
	FailRunError         = "run-error"
	FailEngineDivergence = "engine-divergence"
	FailBenignCrash      = "benign-crash"
	FailBenignDivergence = "benign-output-divergence"
	FailShadowFalsePos   = "shadow-false-positive"
	FailShadowMiss       = "shadow-miss"
	FailDefenseBreach    = "defense-breach"
	FailDefenseCrash     = "defense-crash"
	FailNativeMiss       = "native-miss"
	FailInvariant        = "invariant"
)

// Report is the oracle's verdict on one generated case.
type Report struct {
	Seed     uint64
	Kind     string
	Outcomes []*Outcome
	Failures []Failure
}

// OK reports whether every assertion held.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) fail(class string, cell, detail string) {
	r.Failures = append(r.Failures, Failure{Seed: r.Seed, Kind: r.Kind, Class: class, Cell: cell, Detail: detail})
}

// Oracle runs a generated case across the execution matrix and checks
// every cell against the injected ground truth.
type Oracle struct {
	// Engines to cross-check (default: all).
	Engines []prog.Engine
	// Allocators to cross-check in native/defended cells (default:
	// all).
	Allocators []AllocKind
	// Policies are the defense families to run the defended cells
	// under (default: FamilyHT only, the paper's matrix). Each policy
	// is asserted against its own Containment matrix: claimed kinds
	// must be contained, documented misses run record-only.
	Policies []defense.Family
	// MaxSteps bounds each run (default 1<<20 — generated programs
	// finish in a few thousand steps, so exhaustion is itself a bug).
	MaxSteps uint64
	// InvariantEvery is the walker's audit period in interpreter
	// steps (default 128).
	InvariantEvery uint64
	// AllocatorFor overrides allocator construction for native and
	// defended cells (nil = heapsim.New / heapsim.NewPool). The
	// mutation tests use this seam to slide a deliberately broken
	// allocator under the matrix and prove the rig catches it.
	AllocatorFor func(kind AllocKind, space *mem.Space) (heapsim.Allocator, error)
}

func (o Oracle) withDefaults() Oracle {
	if len(o.Engines) == 0 {
		o.Engines = prog.AllEngines()
	}
	if len(o.Allocators) == 0 {
		o.Allocators = AllAllocators()
	}
	if len(o.Policies) == 0 {
		o.Policies = []defense.Family{defense.FamilyHT}
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 1 << 20
	}
	if o.InvariantEvery == 0 {
		o.InvariantEvery = 128
	}
	return o
}

// Check runs the full matrix for one generated case.
//
// The matrix and its per-cell expectations:
//
//   - shadow × engine × {benign, attack}: benign must be silent (no
//     warnings — the generator's benign path is memory-clean by
//     construction); the attack must produce a warning AND a patch of
//     the injected kind's ground-truth type.
//   - native × alloc × engine × {benign, attack}: benign must be
//     fault-free with invariants intact; the attack must show its
//     teeth on the boundary-tag heap (leak the secret, clobber the
//     sentinel/metadata, or fault) — if it does not, the generator's
//     ground truth is wrong, which is a finding in itself. On the
//     pool the attack runs record-only: pool recycling discipline
//     legitimately defangs reuse-based attacks.
//   - defended × alloc × engine × {benign, attack}: patches from the
//     shadow attack replay are loaded; the secret must never leak, a
//     surviving run must preserve the sentinel, reuse-based attacks
//     must complete without crashing (double free must fault,
//     contained), and heap invariants must hold in every cell.
//
// Within every (mode, alloc, input) coordinate, all engines must be
// bit-identical across outputs, faults, steps, cycles, and counters.
func (o Oracle) Check(g *Generated) *Report {
	o = o.withDefaults()
	rep := &Report{Seed: g.Seed, Kind: g.Kind.String()}

	sys, err := core.NewSystem(g.Program, core.Options{MaxSteps: o.MaxSteps})
	if err != nil {
		rep.fail(FailRunError, "", fmt.Sprintf("building system: %v", err))
		return rep
	}
	coder := sys.Coder()

	// Shadow analysis cells. The first engine's attack report is kept
	// in typed form for the ground-truth assertions; every engine's
	// rendering lands in Outcomes for the divergence check.
	var attackRep *analysis.Report
	for _, e := range o.Engines {
		for _, attack := range []bool{false, true} {
			cell := Cell{Mode: ModeShadow, Engine: e, Attack: attack}
			az := &analysis.Analyzer{Coder: coder, MaxSteps: o.MaxSteps, Engine: e}
			out := &Outcome{Cell: cell}
			r, err := az.Analyze(g.Program, g.input(attack))
			if err != nil {
				out.RunErr = err.Error()
			} else {
				out.Result = r.Result
				for _, w := range r.Warnings {
					out.Warnings = append(out.Warnings, w.String())
				}
				var buf bytes.Buffer
				if err := r.Patches.WriteConfig(&buf); err != nil {
					out.RunErr = err.Error()
				}
				out.PatchText = buf.String()
				if attack && attackRep == nil {
					attackRep = r
				}
			}
			rep.Outcomes = append(rep.Outcomes, out)
		}
	}

	var patches *patch.Set
	if attackRep != nil {
		patches = attackRep.Patches
	}

	// Native and defended cells; the defended plane fans out across
	// every requested policy family.
	for _, alloc := range o.Allocators {
		for _, e := range o.Engines {
			for _, attack := range []bool{false, true} {
				cell := Cell{Mode: ModeNative, Alloc: alloc, Engine: e, Attack: attack}
				rep.Outcomes = append(rep.Outcomes, o.runCell(g, coder, cell, nil))
				if patches != nil {
					cell.Mode = ModeDefended
					for _, pol := range o.Policies {
						cell.Policy = pol
						rep.Outcomes = append(rep.Outcomes, o.runCell(g, coder, cell, patches))
					}
				}
			}
		}
	}

	o.assertEngines(rep)
	o.assertBenign(rep)
	o.assertShadow(rep, g, attackRep)
	o.assertNativeAttack(rep, g)
	o.assertDefendedAttack(rep, g)
	return rep
}

// input selects the benign or attack input.
func (g *Generated) input(attack bool) []byte {
	if attack {
		return g.Attack
	}
	return g.Benign
}

// runCell executes one native or defended cell over a fresh space,
// with the invariant walker attached as the quantum hook.
func (o Oracle) runCell(g *Generated, coder *encoding.Coder, cell Cell, patches *patch.Set) *Outcome {
	out := &Outcome{Cell: cell}
	fail := func(err error) *Outcome { out.RunErr = err.Error(); return out }

	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return fail(err)
	}
	// Defended cells run fully telemetered: the snapshot lands in the
	// Outcome (and hence the engine-divergence signature) and lets the
	// harness assert that a planted vulnerability's patch actually fired.
	// The quantum hook stays with the invariant walker, so quantum
	// timing is deliberately absent here.
	var tcol *telemetry.Collector
	var tel *telemetry.Scope
	if cell.Mode == ModeDefended {
		tcol = telemetry.New(telemetry.Config{Shards: 1, RingSize: 256})
		tel = tcol.Scope()
		space.SetTelemetry(tel)
	}
	// Construction order matters on the boundary-tag heap: its arena
	// must stay the space's only growing segment, so the defender (which
	// maps its patch table first, like a library constructor running
	// before any application allocation) must come before heapsim.New.
	// The pool allocator carves runs lazily and has no such constraint.
	// AllocatorFor factories must likewise defer any arena
	// establishment to first use when the defended cells are enabled.
	var under heapsim.Allocator
	var backend prog.HeapBackend
	var dback *defense.Backend
	if cell.Mode == ModeDefended && cell.Alloc == AllocHeap && o.AllocatorFor == nil {
		dback, err = defense.NewBackend(space, defense.Config{Patches: patches, Family: cell.Policy, Telemetry: tel})
		if err != nil {
			return fail(err)
		}
		backend, under = dback, dback.Defender().Heap()
	} else {
		switch {
		case o.AllocatorFor != nil:
			under, err = o.AllocatorFor(cell.Alloc, space)
		case cell.Alloc == AllocHeap:
			under, err = heapsim.New(space)
		default:
			under, err = heapsim.NewPool(space)
		}
		if err != nil {
			return fail(err)
		}
		if cell.Mode == ModeDefended {
			switch a := under.(type) {
			case *heapsim.Heap:
				a.SetTelemetry(tel)
			case *heapsim.PoolAllocator:
				a.SetTelemetry(tel)
			}
			dback, err = defense.NewBackendWithAllocator(space, under, defense.Config{Patches: patches, Family: cell.Policy, Telemetry: tel})
			backend = dback
		} else {
			backend, err = prog.NewNativeBackendWithAllocator(space, under)
		}
		if err != nil {
			return fail(err)
		}
	}
	ex, err := prog.NewExec(g.Program, prog.Config{
		Backend:  backend,
		Coder:    coder,
		MaxSteps: o.MaxSteps,
		Engine:   cell.Engine,
	})
	if err != nil {
		return fail(err)
	}
	w := NewWalker(space, under)
	w.Attach(ex, o.InvariantEvery)

	func() {
		defer func() {
			if r := recover(); r != nil {
				out.Panic = fmt.Sprint(r)
			}
		}()
		res, err := ex.Run(g.input(cell.Attack))
		if err != nil {
			out.RunErr = err.Error()
			return
		}
		out.Result = res
	}()

	w.Check() // final audit after the run settles
	if v := w.Violation(); v != nil {
		out.Invariant = v.Error()
	}
	out.Checks = w.Checks()
	if dback != nil {
		st := dback.Defender().Stats()
		out.DefenseStats = &st
	}
	if tcol != nil {
		out.Telemetry = tcol.Snapshot()
	}
	return out
}

// assertEngines checks that every engine produced bit-identical
// observables at the same (mode, alloc, policy, input) coordinate.
func (o Oracle) assertEngines(rep *Report) {
	type key struct {
		mode   Mode
		alloc  AllocKind
		attack bool
		policy defense.Family
	}
	first := map[key]*Outcome{}
	for _, out := range rep.Outcomes {
		k := key{out.Cell.Mode, out.Cell.Alloc, out.Cell.Attack, out.Cell.Policy}
		if prev, ok := first[k]; !ok {
			first[k] = out
		} else if prev.signature() != out.signature() {
			rep.fail(FailEngineDivergence, out.Cell.String(),
				fmt.Sprintf("%v vs %v:\n%s\n%s", prev.Cell.Engine, out.Cell.Engine, prev.signature(), out.signature()))
		}
	}
}

// assertBenign checks that every benign cell is memory-clean and that
// all benign cells agree on output and step count — the benign path is
// the program's specified behavior, so defense posture, allocator,
// and engine must all be invisible to it.
func (o Oracle) assertBenign(rep *Report) {
	var ref *Outcome
	for _, out := range rep.Outcomes {
		if out.Cell.Attack {
			continue
		}
		cell := out.Cell.String()
		if out.RunErr != "" || out.Panic != "" {
			rep.fail(FailBenignCrash, cell, "run did not complete: "+out.RunErr+out.Panic)
			continue
		}
		if out.Result.Fault != nil {
			rep.fail(FailBenignCrash, cell, "fault: "+out.Result.Fault.Error())
			continue
		}
		if out.Invariant != "" {
			rep.fail(FailInvariant, cell, out.Invariant)
		}
		if out.Cell.Mode == ModeShadow && len(out.Warnings) > 0 {
			rep.fail(FailShadowFalsePos, cell, out.Warnings[0])
		}
		if ref == nil {
			ref = out
			continue
		}
		if !bytes.Equal(out.Result.Output, ref.Result.Output) {
			rep.fail(FailBenignDivergence, cell,
				fmt.Sprintf("output %x, want %x (as %s)", out.Result.Output, ref.Result.Output, ref.Cell))
		}
		if out.Result.Steps != ref.Result.Steps {
			rep.fail(FailBenignDivergence, cell,
				fmt.Sprintf("steps %d, want %d (as %s)", out.Result.Steps, ref.Result.Steps, ref.Cell))
		}
	}
}

// assertShadow checks that the attack replay detected the injected
// vulnerability: at least one warning of the ground-truth type, and at
// least one generated patch carrying it.
func (o Oracle) assertShadow(rep *Report, g *Generated, attackRep *analysis.Report) {
	if attackRep == nil {
		rep.fail(FailRunError, "shadow", "attack analysis did not complete")
		return
	}
	want := g.Kind.GroundTruth()
	warned := false
	for _, w := range attackRep.Warnings {
		if w.Type == want {
			warned = true
			break
		}
	}
	if !warned {
		rep.fail(FailShadowMiss, "shadow", fmt.Sprintf("no %v warning among %d", want, len(attackRep.Warnings)))
	}
	patched := false
	for _, p := range attackRep.Patches.Patches() {
		if p.Types.Has(want) {
			patched = true
			break
		}
	}
	if !patched {
		rep.fail(FailShadowMiss, "shadow", fmt.Sprintf("no %v patch among %d", want, attackRep.Patches.Len()))
	}
}

// assertNativeAttack checks the attack has real native consequences on
// the boundary-tag heap (otherwise the injected ground truth is
// vacuous), and that corruption never escapes the one cell where it is
// expected.
func (o Oracle) assertNativeAttack(rep *Report, g *Generated) {
	for _, out := range rep.Outcomes {
		if out.Cell.Mode != ModeNative || !out.Cell.Attack {
			continue
		}
		cell := out.Cell.String()
		// Corruption (walker violations, allocator panics) is legal
		// only where the attack natively smashes metadata: the
		// boundary-tag heap under attack.
		if out.Cell.Alloc != AllocHeap && (out.Invariant != "" || out.Panic != "") {
			rep.fail(FailInvariant, cell, "corruption outside the heap-attack cell: "+out.Invariant+out.Panic)
			continue
		}
		if out.Cell.Alloc != AllocHeap {
			continue // pool attacks run record-only
		}
		crashed := out.Panic != "" || out.RunErr != "" ||
			(out.Result != nil && out.Result.Fault != nil)
		switch {
		case g.Kind.Leaky():
			if !crashed && out.Result != nil && !bytes.Contains(out.Result.Output, g.Secret) {
				rep.fail(FailNativeMiss, cell, "attack leaked no secret and did not crash")
			}
		case g.Kind.Clobbering():
			clobbered := crashed || out.Invariant != "" ||
				(out.Result != nil && !bytes.Contains(out.Result.Output, g.Sentinel))
			if !clobbered {
				rep.fail(FailNativeMiss, cell, "attack left the sentinel intact without crashing")
			}
		case g.Kind == DoubleFree:
			if !crashed && out.Invariant == "" {
				rep.fail(FailNativeMiss, cell, "double free went unnoticed natively")
			}
		}
	}
}

// familyContains maps a campaign kind onto the family's documented
// Containment matrix.
func familyContains(f defense.Family, k VulnKind) bool {
	c := f.Containment()
	switch k {
	case OverflowRead:
		return c.OverflowRead
	case OverflowWrite:
		return c.OverflowWrite
	case UnderflowRead:
		return c.UnderflowRead
	case UAFRead:
		return c.UAFRead
	case UAFWrite:
		return c.UAFWrite
	case DoubleFree:
		return c.DoubleFree
	case UninitRead:
		return c.UninitRead
	default:
		return false
	}
}

// assertDefendedAttack checks each policy's effectiveness claims cell
// by cell against its Containment matrix. For HT, note the guard-page
// geometry: the defended overflow's writes land in the page-alignment
// pad between the buffer and the guard, so containment — not a
// guaranteed fault — is the assertion. ShadowBound's bounds check, by
// contrast, promises a fault at the first out-of-bounds byte of every
// spatial attack, so there the assertion is strict.
func (o Oracle) assertDefendedAttack(rep *Report, g *Generated) {
	for _, out := range rep.Outcomes {
		if out.Cell.Mode != ModeDefended {
			continue
		}
		cell := out.Cell.String()
		if out.Cell.Attack && !familyContains(out.Cell.Policy, g.Kind) {
			// Documented expected miss (Family.Containment, DESIGN.md
			// §16): the cell runs record-only. Its outcome still joins
			// the report and the engine-divergence signature, but no
			// containment is asserted — the attack may leak, clobber,
			// or corrupt heap state exactly as it would natively.
			continue
		}
		if out.Panic != "" {
			rep.fail(FailDefenseCrash, cell, "panic under defense: "+out.Panic)
			continue
		}
		if out.Invariant != "" {
			rep.fail(FailInvariant, cell, "violation under defense: "+out.Invariant)
		}
		if !out.Cell.Attack {
			continue // benign defended cells are covered by assertBenign
		}
		if out.RunErr != "" {
			rep.fail(FailDefenseCrash, cell, out.RunErr)
			continue
		}
		res := out.Result
		if g.Kind.Leaky() && bytes.Contains(res.Output, g.Secret) {
			rep.fail(FailDefenseBreach, cell, "secret leaked through defended output")
		}
		switch g.Kind {
		case OverflowWrite, UAFWrite:
			if res.Fault == nil && !bytes.Contains(res.Output, g.Sentinel) {
				rep.fail(FailDefenseBreach, cell, "sentinel clobbered under defense")
			}
		case DoubleFree:
			if res.Fault == nil {
				rep.fail(FailDefenseBreach, cell, "double free not contained (no fault)")
			}
		}
		switch out.Cell.Policy {
		case defense.FamilyShadowBound:
			// Spatial attacks must be rejected by the bounds check
			// itself — a deliberate containment fault, not a wild one.
			switch g.Kind {
			case OverflowRead, OverflowWrite, UnderflowRead:
				if res.Fault == nil {
					rep.fail(FailDefenseBreach, cell, "spatial attack passed the bounds check")
				} else if !defense.IsContainmentFault(res.Fault) {
					rep.fail(FailDefenseBreach, cell, "spatial attack faulted wild, not via the bounds check: "+res.Fault.Error())
				}
			}
		default:
			// HT and MESH survive temporal kinds without terminating:
			// deferred free (or blanket quarantine) and zero-fill
			// neutralize them.
			switch g.Kind {
			case UAFRead, UAFWrite, UninitRead:
				if res.Fault != nil {
					rep.fail(FailDefenseCrash, cell, "defense faulted on a survivable attack: "+res.Fault.Error())
				}
			}
		}
	}
}
