package campaign

import (
	"reflect"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// normalize strips the timing fields the determinism contract excludes
// (RunReport documents that only these may vary across worker counts
// and scheduling modes).
func normalize(r *RunReport) *RunReport {
	c := *r
	c.Workers = 0
	c.ShardSize = 0
	c.Guided = false
	c.WorkerStats = nil
	c.Elapsed = 0
	c.ElapsedMs = 0
	c.SeedsPerSec = 0
	return &c
}

// TestParallelMatchesSequential pins the merge contract: a run to
// completion produces the identical report at any worker count —
// per-shard accumulators concatenated in shard order reconstruct
// exactly the sequential seed order. Under the race detector this
// doubles as the concurrency test, with more workers than GOMAXPROCS
// (CI runners here have GOMAXPROCS=1) hammering the scheduler, the
// stop flag, and the per-worker workbenches.
func TestParallelMatchesSequential(t *testing.T) {
	seeds := uint64(16)
	if raceEnabled {
		seeds = 6
	}
	base := RunConfig{Seeds: seeds, ShardSize: 3}
	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 4

	sr, err := Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Workers != 1 || pr.Workers != 4 {
		t.Fatalf("worker counts: sequential=%d parallel=%d", sr.Workers, pr.Workers)
	}
	if !reflect.DeepEqual(normalize(sr), normalize(pr)) {
		t.Errorf("parallel report diverges from sequential:\n seq: %+v\n par: %+v", normalize(sr), normalize(pr))
	}
	if sr.Cases != int(seeds) || sr.FailingSeeds != 0 {
		t.Errorf("clean corpus: cases=%d failing=%d", sr.Cases, sr.FailingSeeds)
	}
	var statSeeds uint64
	for _, st := range pr.WorkerStats {
		statSeeds += st.Seeds
	}
	if statSeeds != uint64(pr.Cases) {
		t.Errorf("worker stats cover %d seeds, report has %d cases", statSeeds, pr.Cases)
	}
}

// brokenOracle returns an oracle whose boundary-tag heap silently
// under-allocates (the mutation rig's shortHeap), so most seeds fail
// the matrix — the harness for early-stop and guidance tests.
func brokenOracle() Oracle {
	return Oracle{
		AllocatorFor: func(kind AllocKind, space *mem.Space) (heapsim.Allocator, error) {
			if kind == AllocHeap {
				return &shortHeap{space: space}, nil
			}
			return heapsim.NewPool(space)
		},
	}
}

// TestGuidedMatchesUnguided pins that divergence guidance reorders
// execution only: the merged run-to-completion report is identical
// with and without it, including over a corpus that actually fails
// (so the kind-score path really engages).
func TestGuidedMatchesUnguided(t *testing.T) {
	if testing.Short() {
		t.Skip("broken-allocator corpus in -short")
	}
	seeds := uint64(8)
	if raceEnabled {
		seeds = 4
	}
	base := RunConfig{
		Seeds:     seeds,
		ShardSize: 2,
		Workers:   2,
		Oracle:    brokenOracle(),
		Gen:       GenConfig{Kinds: []VulnKind{OverflowWrite, UAFWrite}},
	}
	guided := base
	guided.Guided = true

	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Run(guided)
	if err != nil {
		t.Fatal(err)
	}
	if plain.FailingSeeds == 0 {
		t.Fatal("broken allocator produced no failing seeds; guidance untested")
	}
	if !reflect.DeepEqual(normalize(plain), normalize(g)) {
		t.Errorf("guided report diverges from unguided:\n plain:  %+v\n guided: %+v", normalize(plain), normalize(g))
	}
}

// TestMaxFailingSeedsStopsPromptly pins both halves of the stop
// contract: a seed with several assertion failures counts as ONE
// failing seed, and once the threshold is reached in-flight workers
// cancel at seed granularity instead of draining their shards.
func TestMaxFailingSeedsStopsPromptly(t *testing.T) {
	if testing.Short() {
		t.Skip("broken-allocator corpus in -short")
	}
	seeds := uint64(400)
	rep, err := Run(RunConfig{
		Seeds:           seeds,
		ShardSize:       8,
		Workers:         4,
		MaxFailingSeeds: 3,
		Oracle:          brokenOracle(),
		Gen:             GenConfig{Kinds: []VulnKind{OverflowWrite}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stopped {
		t.Fatalf("run was not stopped (failing=%d cases=%d)", rep.FailingSeeds, rep.Cases)
	}
	if rep.FailingSeeds < 3 {
		t.Errorf("stopped with only %d failing seeds (threshold 3)", rep.FailingSeeds)
	}
	if rep.Cases >= int(seeds) {
		t.Errorf("stop was not prompt: all %d seeds were checked", rep.Cases)
	}
	distinct := map[uint64]bool{}
	for _, f := range rep.Failures {
		distinct[f.Seed] = true
	}
	if len(distinct) != rep.FailingSeeds {
		t.Errorf("FailingSeeds=%d but failures name %d distinct seeds", rep.FailingSeeds, len(distinct))
	}
	if len(rep.Failures) <= rep.FailingSeeds {
		t.Logf("note: every failing seed produced a single assertion failure (count-once path still covered)")
	}
	if len(rep.Bundles) != rep.FailingSeeds {
		t.Errorf("%d bundles for %d failing seeds", len(rep.Bundles), rep.FailingSeeds)
	}
}

// TestRunBundles pins the forensic record: each failing seed yields a
// replayable bundle carrying the source, hex inputs, the failure list,
// the minimized witness when reduction is on, and event-ring traces
// from the defended cells.
func TestRunBundles(t *testing.T) {
	if testing.Short() {
		t.Skip("broken-allocator corpus in -short")
	}
	oracle := brokenOracle()
	// Trim the matrix to keep the reduction loop (which replays every
	// delta-debugging candidate through the oracle) cheap.
	oracle.Engines = []prog.Engine{prog.EngineTree}
	oracle.Allocators = []AllocKind{AllocHeap}
	gen := GenConfig{Kinds: []VulnKind{OverflowWrite}}
	// Reduction replays hundreds of delta-debugging candidates, each a
	// fresh-substrate oracle pass (AllocatorFor forces delegation);
	// under the race detector's ~20x slowdown that alone blows the CI
	// budget. Skip it there: MinimizeFailure runs entirely inside one
	// worker's goroutine on worker-local state, so the concurrent
	// surface it touches is exactly what the other multi-worker tests
	// already race.
	reduce := !raceEnabled
	rep, err := Run(RunConfig{
		Seeds:           40,
		Workers:         2,
		MaxFailingSeeds: 1,
		Reduce:          reduce,
		Oracle:          oracle,
		Gen:             gen,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bundles) == 0 {
		t.Fatal("no bundles for a failing run")
	}
	b := rep.Bundles[0]
	if b.Source == "" || b.Benign == "" || b.Attack == "" {
		t.Errorf("bundle incomplete: source=%d bytes benign=%q attack=%q", len(b.Source), b.Benign, b.Attack)
	}
	if len(b.Failures) == 0 {
		t.Error("bundle carries no failures")
	}
	if reduce {
		if b.Reduced == nil {
			t.Error("Reduce was on but bundle has no reduced witness")
		} else if b.Reduced.Statements <= 0 || b.Reduced.Source == "" {
			t.Errorf("reduced witness incomplete: %+v", b.Reduced)
		}
		if len(rep.Reduced) != len(rep.Bundles) {
			t.Errorf("%d reduced witnesses for %d bundles", len(rep.Reduced), len(rep.Bundles))
		}
	}
	if len(b.Traces) == 0 {
		t.Error("bundle carries no defended-cell traces")
	}
}

// TestRunMatrixSelection pins that the sharded runtime honors the
// oracle's engine/allocator trims and the generator's kind trim, the
// same knobs the CLI exposes.
func TestRunMatrixSelection(t *testing.T) {
	rep, err := Run(RunConfig{
		Seeds:   3,
		Workers: 2,
		Gen:     GenConfig{Kinds: []VulnKind{DoubleFree}},
		Oracle: Oracle{
			Engines:    []prog.Engine{prog.EngineTree, prog.EngineVM},
			Allocators: []AllocKind{AllocPool},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailingSeeds != 0 {
		t.Fatalf("trimmed matrix failed: %+v", rep.Failures)
	}
	if rep.Cases != 3 || rep.ByKind["double-free"] != 3 {
		t.Errorf("cases=%d by_kind=%v", rep.Cases, rep.ByKind)
	}
	if rep.SeedsPerSec <= 0 {
		t.Errorf("seeds_per_sec not computed: %v", rep.SeedsPerSec)
	}
}

// TestPlannedKind pins the guided scheduler's profiling primitive:
// PlannedKind must agree with Generate for every seed and config trim.
func TestPlannedKind(t *testing.T) {
	cfgs := []GenConfig{
		{},
		{Kinds: []VulnKind{UAFRead, DoubleFree, UninitRead}},
	}
	for _, cfg := range cfgs {
		for seed := uint64(0); seed < 50; seed++ {
			want := PlannedKind(seed, cfg)
			g, err := Generate(seed, cfg)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if g.Kind != want {
				t.Fatalf("seed %d: PlannedKind=%v but Generate injected %v", seed, want, g.Kind)
			}
		}
	}
}
