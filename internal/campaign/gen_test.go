package campaign

import (
	"bytes"
	"testing"

	"heaptherapy/internal/progtext"
)

// TestGenerateDeterministic: the same seed must reproduce the case
// bit for bit — the whole campaign protocol (replay, reduction, CI
// smoke) rests on this.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		a, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Source != b.Source {
			t.Fatalf("seed %d: sources differ", seed)
		}
		if !bytes.Equal(a.Benign, b.Benign) || !bytes.Equal(a.Attack, b.Attack) {
			t.Fatalf("seed %d: inputs differ", seed)
		}
		if a.Kind != b.Kind {
			t.Fatalf("seed %d: kinds differ: %v vs %v", seed, a.Kind, b.Kind)
		}
	}
}

// TestGenerateAllKinds: restricting the kind set must be honored, and
// the ground-truth payloads must match the kind's character.
func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range AllKinds() {
		for seed := uint64(0); seed < 5; seed++ {
			g, err := Generate(seed, GenConfig{Kinds: []VulnKind{kind}})
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			if g.Kind != kind {
				t.Fatalf("%v seed %d: got kind %v", kind, seed, g.Kind)
			}
			if kind.Leaky() != (g.Secret != nil) {
				t.Errorf("%v: secret presence %v, want %v", kind, g.Secret != nil, kind.Leaky())
			}
			if kind.Clobbering() != (g.Sentinel != nil) {
				t.Errorf("%v: sentinel presence %v, want %v", kind, g.Sentinel != nil, kind.Clobbering())
			}
			if len(g.Benign) == 0 || len(g.Attack) == 0 {
				t.Errorf("%v seed %d: empty input", kind, seed)
			}
			if g.Benign[0] == g.Attack[0] {
				t.Errorf("%v seed %d: benign and attack headers coincide", kind, seed)
			}
		}
	}
}

// TestGenerateRoundTrip: the generated program is canonical progtext —
// printing the parsed program must reproduce Source exactly.
func TestGenerateRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if printed := progtext.Print(g.Program); printed != g.Source {
			t.Fatalf("seed %d: print(parse(src)) != src\n--- src ---\n%s\n--- printed ---\n%s", seed, g.Source, printed)
		}
	}
}

// TestParseKind round-trips every kind name and rejects junk.
func TestParseKind(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("heap-spray"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
	if s := VulnKind(200).String(); s != "VulnKind(200)" {
		t.Errorf("unknown kind String() = %q", s)
	}
	if VulnKind(200).GroundTruth() != 0 {
		t.Error("unknown kind has a ground truth")
	}
}
