package campaign

import (
	"testing"
)

// TestOracleCleanSeeds runs the full matrix over a band of seeds: a
// healthy pipeline must pass every assertion for every kind, and the
// invariant walker must have audited every cell.
func TestOracleCleanSeeds(t *testing.T) {
	o := Oracle{}
	seeds := uint64(30)
	if raceEnabled {
		// The compiled engine widened the matrix from 20 to 30 cells
		// per seed; scale the raced band down accordingly.
		seeds = 5
	}
	for seed := uint64(0); seed < seeds; seed++ {
		g, err := Generate(seed, GenConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := o.Check(g)
		for _, f := range rep.Failures {
			t.Errorf("seed %d (%v) [%s @ %s]: %s", seed, g.Kind, f.Class, f.Cell, f.Detail)
		}
		if t.Failed() {
			t.Fatalf("seed %d source:\n%s", seed, g.Source)
		}
		walked := false
		for _, out := range rep.Outcomes {
			if out.Checks > 0 {
				walked = true
			}
		}
		if !walked {
			t.Fatalf("seed %d: invariant walker never ran", seed)
		}
	}
}

// TestOraclePerKind pins one seed of every kind through the matrix so
// a regression in a single gadget shape names itself.
func TestOraclePerKind(t *testing.T) {
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			g, err := Generate(7, GenConfig{Kinds: []VulnKind{kind}})
			if err != nil {
				t.Fatal(err)
			}
			rep := Oracle{}.Check(g)
			for _, f := range rep.Failures {
				t.Errorf("[%s @ %s]: %s", f.Class, f.Cell, f.Detail)
			}
			if t.Failed() {
				t.Logf("source:\n%s", g.Source)
			}
		})
	}
}
