package campaign

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// integrityChecker is satisfied by both heapsim.Heap and
// heapsim.PoolAllocator.
type integrityChecker interface {
	CheckIntegrity() error
}

// Walker audits allocator and page-table invariants between
// interpreter quanta. It records the first violation it sees (later
// checks on an already-corrupt heap would just echo the same damage)
// and keeps running, so the oracle can attribute the violation to a
// matrix cell after the run completes.
type Walker struct {
	space     *mem.Space
	under     integrityChecker
	violation error
	checks    uint64
}

// NewWalker builds a walker over the given space and allocator. The
// allocator may be nil (page audit only) and need not support
// integrity checking.
func NewWalker(space *mem.Space, under heapsim.Allocator) *Walker {
	w := &Walker{space: space}
	if ic, ok := under.(integrityChecker); ok {
		w.under = ic
	}
	return w
}

// Check runs one audit pass: allocator integrity first (panics inside
// the checker — e.g. a clobbered chunk header tripping a load guard —
// are converted to violations), then the page-state audit. The first
// violation is latched.
func (w *Walker) Check() {
	w.checks++
	if w.violation != nil {
		return
	}
	if w.under != nil {
		if err := w.safeIntegrity(); err != nil {
			w.violation = err
			return
		}
	}
	if w.space != nil {
		if err := w.space.Audit(); err != nil {
			w.violation = err
		}
	}
}

func (w *Walker) safeIntegrity() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("campaign: integrity check panicked: %v", r)
		}
	}()
	return w.under.CheckIntegrity()
}

// Attach installs the walker as the execution's quantum hook, firing
// every `every` statements. Returns false if the Exec does not expose
// a scheduling seam.
func (w *Walker) Attach(ex prog.Exec, every uint64) bool {
	return prog.SetQuantumHook(ex, every, w.Check)
}

// Violation returns the first invariant violation seen, or nil.
func (w *Walker) Violation() error { return w.violation }

// Checks returns how many audit passes have run.
func (w *Walker) Checks() uint64 { return w.checks }
