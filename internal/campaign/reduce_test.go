package campaign

import (
	"bytes"
	"testing"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// runNativeHeap executes p over a fresh boundary-tag heap, converting
// panics into a flag so reduction predicates can treat "crashed" as a
// signature.
func runNativeHeap(p *prog.Program, input []byte) (res *prog.Result, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
		}
	}()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil, false
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		return nil, false
	}
	ex, err := prog.NewExec(p, prog.Config{Backend: backend, MaxSteps: 1 << 20})
	if err != nil {
		return nil, false
	}
	res, err = ex.Run(input)
	if err != nil {
		return nil, false
	}
	return res, false
}

// TestReduceShrinksLeak: an overflow-read case minimizes down to its
// essential gadget — the failure signature (secret bytes in native
// output) must survive reduction, and the survivor must be small.
func TestReduceShrinksLeak(t *testing.T) {
	g, err := Generate(3, GenConfig{Kinds: []VulnKind{OverflowRead}})
	if err != nil {
		t.Fatal(err)
	}
	leaks := func(p *prog.Program) bool {
		res, panicked := runNativeHeap(p, g.Attack)
		return !panicked && res != nil && bytes.Contains(res.Output, g.Secret)
	}
	if !leaks(g.Program) {
		t.Fatal("unreduced program does not leak")
	}
	before := CountStatements(g.Program)
	reduced := Reduce(g.Program, leaks, 0)
	after := CountStatements(reduced)
	if !leaks(reduced) {
		t.Fatal("reduced program lost the failure signature")
	}
	if after >= before {
		t.Fatalf("no reduction: %d -> %d statements", before, after)
	}
	if after > 15 {
		t.Fatalf("reduced program still has %d statements (want <= 15)", after)
	}
	// The original must be untouched.
	if CountStatements(g.Program) != before {
		t.Fatal("Reduce mutated its input")
	}
}

// TestReduceNonFailing: a predicate that never fires returns the
// program unshrunk.
func TestReduceNonFailing(t *testing.T) {
	g, err := Generate(5, GenConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reduced := Reduce(g.Program, func(*prog.Program) bool { return false }, 0)
	if CountStatements(reduced) != CountStatements(g.Program) {
		t.Fatal("Reduce shrank a non-failing program")
	}
}

// TestReduceRoundBound: maxRounds is honored (a single round may not
// reach the fixpoint but must still preserve the signature).
func TestReduceRoundBound(t *testing.T) {
	g, err := Generate(11, GenConfig{Kinds: []VulnKind{DoubleFree}})
	if err != nil {
		t.Fatal(err)
	}
	faults := func(p *prog.Program) bool {
		res, panicked := runNativeHeap(p, g.Attack)
		return panicked || (res != nil && res.Fault != nil)
	}
	if !faults(g.Program) {
		t.Fatal("unreduced double free does not fault")
	}
	reduced := Reduce(g.Program, faults, 1)
	if !faults(reduced) {
		t.Fatal("round-bounded reduction lost the signature")
	}
	if CountStatements(reduced) >= CountStatements(g.Program) {
		t.Fatal("round-bounded reduction made no progress")
	}
}

func TestCountStatements(t *testing.T) {
	p := &prog.Program{
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Assign{Dst: "x", E: prog.C(1)},
				prog.If{
					Cond: prog.Lt(prog.V("x"), prog.C(2)),
					Then: []prog.Stmt{prog.Nop{}},
					Else: []prog.Stmt{prog.Nop{}, prog.Nop{}},
				},
				prog.While{Cond: prog.Lt(prog.V("x"), prog.C(0)), Body: []prog.Stmt{prog.Nop{}}},
				prog.Return{},
			}},
		},
	}
	if n := CountStatements(p); n != 8 {
		t.Fatalf("CountStatements = %d, want 8", n)
	}
}
