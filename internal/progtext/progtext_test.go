package progtext

import (
	"bytes"
	"strings"
	"testing"

	"heaptherapy/internal/core"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/instrument"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/vuln"
)

const echoServer = `
# A vulnerable echo server.
program echo

func main {
    call handle
}

func handle {
    alloc reply = malloc(64)
    alloc key = malloc(64)
    storebytes key, "session-key=hunter2"
    memset reply, 46, 64
    input len, 2
    output reply, len & 0xFF | (len >> 8) << 8   # trust the wire length
}
`

func mustParse(t *testing.T, src string) *prog.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func runNative(t *testing.T, p *prog.Program, input []byte) *prog.Result {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.New(p, prog.Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseAndRun(t *testing.T) {
	p := mustParse(t, echoServer)
	if p.Name != "echo" {
		t.Errorf("name = %q", p.Name)
	}
	res := runNative(t, p, []byte{64, 0})
	if len(res.Output) != 64 {
		t.Fatalf("output = %d bytes, want 64", len(res.Output))
	}
	// Attack: 200-byte read leaks the key.
	res = runNative(t, p, []byte{200, 0})
	if !bytes.Contains(res.Output, []byte("hunter2")) {
		t.Errorf("overread did not leak: %q", res.Output)
	}
}

func TestParsedProgramThroughFullPipeline(t *testing.T) {
	p := mustParse(t, echoServer)
	sys, err := core.NewSystem(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	patches, _, err := sys.PatchCycle([]byte{200, 0})
	if err != nil {
		t.Fatal(err)
	}
	if patches.Len() == 0 {
		t.Fatal("no patches for parsed program")
	}
	run, err := sys.RunDefended([]byte{200, 0}, patches)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(run.Result.Output, []byte("hunter2")) {
		t.Error("defended parsed program still leaks")
	}
}

func TestAllStatementsParse(t *testing.T) {
	src := `
program kitchen_sink

func main {
    let a = 5 + 3 * 2
    let b = (a << 4) % 100
    alloc m = malloc(64)
    alloc c = calloc(4, 16)
    alloc g = memalign(64, 100)
    alloc aa = aligned_alloc(32, 64)
    realloc m = realloc(m, 128)
    store m, 0x1122, 2
    store (m + 8), a, 8
    storevar m, b
    storebytes (m + 16), "hi\n\t\"\\ \x41"
    load x, m, 8
    memcpy c, m, 16
    memset g, 0, 100
    input req, 4
    input rest_of, rest
    output m, 8
    outputvar x
    call helper
    call r = helper2(a, b)
    if a > b {
        nop
    } else {
        let z = 0
    }
    while b != 0 {
        let b = b >> 1
    }
    free m
    free c
    free g
    free aa
}

func helper {
    return
}

func helper2(p, q) {
    return p - q
}
`
	p := mustParse(t, src)
	res := runNative(t, p, []byte("ABCDEFGH"))
	if res.Crashed() {
		t.Fatalf("kitchen sink crashed: %v", res.Fault)
	}
	if res.Allocs != 5 || res.Frees != 4 {
		t.Errorf("allocs/frees = %d/%d, want 5/4", res.Allocs, res.Frees)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"no-func", "program x\nlet a = 1\n", "expected func"},
		{"bad-stmt", "func main {\n   explode\n}\n", "unknown statement"},
		{"unterminated-block", "func main {\n nop\n", "unterminated block"},
		{"unterminated-string", "func main {\n storebytes 0, \"abc\n}\n", "string"},
		{"bad-alloc-fn", "func main {\n alloc x = mmap(4)\n}\n", "unknown allocation function"},
		{"malloc-arity", "func main {\n alloc x = malloc(1, 2)\n}\n", "malloc takes"},
		{"calloc-arity", "func main {\n alloc x = calloc(1)\n}\n", "calloc takes"},
		{"realloc-kw", "func main {\n alloc x = realloc(0, 4)\n}\n", "realloc statement"},
		{"dup-func", "func main {\n nop\n}\nfunc main {\n nop\n}\n", "duplicate function"},
		{"undefined-callee", "func main {\n call ghost\n}\n", "undefined function"},
		{"two-stmts-one-line", "func main {\n nop nop\n}\n", "end of statement"},
		{"bad-escape", `func main {` + "\n" + ` storebytes 0, "a\q"` + "\n}\n", "unknown escape"},
		{"bad-number", "func main {\n let x = 0x\n}\n", "number"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}

func TestOperatorPrecedence(t *testing.T) {
	src := `
func main {
    let a = 2 + 3 * 4
    outputvar a
    let b = 2 * 3 + 4
    outputvar b
    let c = 1 << 2 + 3
    outputvar c
    let d = 10 - 2 - 3
    outputvar d
    let e = 1 | 2 & 3
    outputvar e
}
`
	p := mustParse(t, src)
	res := runNative(t, p, nil)
	// C precedence: shifts bind LOOSER than +, so 1 << 2+3 is 1<<5.
	vals := []uint64{14, 10, 32, 5, 1 | 2&3}
	if len(res.Output) != 8*len(vals) {
		t.Fatalf("output = %d bytes", len(res.Output))
	}
	for i, want := range vals {
		got := (prog.Value{Bytes: res.Output[i*8 : i*8+8]}).Uint()
		if got != want {
			t.Errorf("value %d = %d, want %d", i, got, want)
		}
	}
	// Left associativity: 10-2-3 = 5 (checked above via vals[3]).
}

// TestRoundTripCorpus prints every corpus program and re-parses it;
// the round-tripped program must behave identically on benign and
// attack inputs.
func TestRoundTripCorpus(t *testing.T) {
	for _, c := range vuln.AllCases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			text := Print(c.Program)
			back, err := Parse(text)
			if err != nil {
				t.Fatalf("re-parse failed: %v\n--- printed ---\n%s", err, text)
			}
			inputs := append([][]byte{c.Attack}, c.Benign...)
			for i, in := range inputs {
				orig := runNative(t, c.Program, in)
				rt := runNative(t, back, in)
				if orig.Crashed() != rt.Crashed() {
					t.Fatalf("input %d: crash mismatch (%v vs %v)", i, orig.Fault, rt.Fault)
				}
				if !bytes.Equal(orig.Output, rt.Output) {
					t.Fatalf("input %d: output mismatch:\n  orig: %q\n  rt:   %q", i, orig.Output, rt.Output)
				}
			}
		})
	}
}

// TestRoundTripStable: Print(Parse(Print(p))) == Print(p).
func TestRoundTripStable(t *testing.T) {
	p := vuln.Heartbleed().Program
	once := Print(p)
	back, err := Parse(once)
	if err != nil {
		t.Fatal(err)
	}
	twice := Print(back)
	if once != twice {
		t.Errorf("printing is not a fixed point:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

// TestInstrumentedRoundTrip: a rewritten (instrumented) program prints
// to progtext — with setglobal, global(...), and ctx suffixes visible
// — and parses back to a program with identical behavior.
func TestInstrumentedRoundTrip(t *testing.T) {
	c := vuln.Heartbleed()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, c.Program.Graph(), c.Program.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, c.Program.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	rewritten, err := instrument.Rewrite(c.Program, coder)
	if err != nil {
		t.Fatal(err)
	}
	text := Print(rewritten)
	for _, want := range []string{"setglobal __cc_v", "let __cc_t = global(__cc_v)", "ctx "} {
		if !strings.Contains(text, want) {
			t.Fatalf("instrumented text missing %q:\n%s", want, text)
		}
	}
	back, err := Parse(text)
	if err != nil {
		t.Fatalf("re-parse of instrumented text: %v\n%s", err, text)
	}
	for _, in := range append([][]byte{c.Attack}, c.Benign...) {
		orig := runNative(t, rewritten, in)
		rt := runNative(t, back, in)
		if !bytes.Equal(orig.Output, rt.Output) {
			t.Fatalf("instrumented round trip diverged on %x", in)
		}
	}
}
