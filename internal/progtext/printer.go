package progtext

import (
	"fmt"
	"sort"
	"strings"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/prog"
)

// Print renders a program back to progtext. Print(Parse(src)) is
// semantically identical to src (locked in by round-trip tests).
func Print(p *prog.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s\n", p.Name)
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	// Entry first, then the rest alphabetically.
	ordered := []string{}
	if _, ok := p.Funcs[p.Entry]; ok {
		ordered = append(ordered, p.Entry)
	}
	for _, n := range names {
		if n != p.Entry {
			ordered = append(ordered, n)
		}
	}
	for _, name := range ordered {
		f := p.Funcs[name]
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "func %s", name)
		if len(f.Params) > 0 {
			fmt.Fprintf(&sb, "(%s)", strings.Join(f.Params, ", "))
		}
		sb.WriteString(" {\n")
		printBlock(&sb, f.Body, 1)
		sb.WriteString("}\n")
	}
	return sb.String()
}

func printBlock(sb *strings.Builder, body []prog.Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range body {
		switch st := s.(type) {
		case prog.Assign:
			fmt.Fprintf(sb, "%slet %s = %s\n", indent, st.Dst, expr(st.E))
		case prog.SetGlobal:
			fmt.Fprintf(sb, "%ssetglobal %s = %s\n", indent, st.Dst, expr(st.E))
		case prog.Alloc:
			switch st.Fn {
			case heapsim.FnCalloc:
				fmt.Fprintf(sb, "%salloc %s = calloc(%s, %s)%s\n", indent, st.Dst, expr(st.N), expr(st.Size), ctxSuffix(st.CCID))
			case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
				fmt.Fprintf(sb, "%salloc %s = %s(%s, %s)%s\n", indent, st.Dst, st.Fn, expr(st.Align), expr(st.Size), ctxSuffix(st.CCID))
			default:
				fmt.Fprintf(sb, "%salloc %s = malloc(%s)%s\n", indent, st.Dst, expr(st.Size), ctxSuffix(st.CCID))
			}
		case prog.ReallocStmt:
			fmt.Fprintf(sb, "%srealloc %s = realloc(%s, %s)%s\n", indent, st.Dst, expr(st.Ptr), expr(st.Size), ctxSuffix(st.CCID))
		case prog.FreeStmt:
			fmt.Fprintf(sb, "%sfree %s\n", indent, expr(st.Ptr))
		case prog.Load:
			fmt.Fprintf(sb, "%sload %s, %s, %s\n", indent, st.Dst, addr(st.Base, st.Off), expr(st.N))
		case prog.Store:
			n := st.N
			if n == nil {
				n = prog.Const{V: 8}
			}
			fmt.Fprintf(sb, "%sstore %s, %s, %s\n", indent, addr(st.Base, st.Off), expr(st.Src), expr(n))
		case prog.StoreVar:
			fmt.Fprintf(sb, "%sstorevar %s, %s\n", indent, addr(st.Base, st.Off), st.Src)
		case prog.StoreBytes:
			fmt.Fprintf(sb, "%sstorebytes %s, %s\n", indent, addr(st.Base, st.Off), quote(st.Data))
		case prog.Memcpy:
			fmt.Fprintf(sb, "%smemcpy %s, %s, %s\n", indent, expr(st.Dst), expr(st.Src), expr(st.N))
		case prog.Memset:
			fmt.Fprintf(sb, "%smemset %s, %s, %s\n", indent, expr(st.Dst), expr(st.B), expr(st.N))
		case prog.ReadInput:
			if _, rest := st.N.(prog.InputRemaining); rest {
				fmt.Fprintf(sb, "%sinput %s, rest\n", indent, st.Dst)
			} else {
				fmt.Fprintf(sb, "%sinput %s, %s\n", indent, st.Dst, expr(st.N))
			}
		case prog.Output:
			fmt.Fprintf(sb, "%soutput %s, %s\n", indent, addr(st.Base, st.Off), expr(st.N))
		case prog.OutputVar:
			fmt.Fprintf(sb, "%soutputvar %s\n", indent, st.Src)
		case prog.Call:
			sb.WriteString(indent + "call ")
			if st.Dst != "" {
				fmt.Fprintf(sb, "%s = ", st.Dst)
			}
			sb.WriteString(st.Callee)
			if len(st.Args) > 0 {
				parts := make([]string, len(st.Args))
				for i, a := range st.Args {
					parts[i] = expr(a)
				}
				fmt.Fprintf(sb, "(%s)", strings.Join(parts, ", "))
			}
			sb.WriteByte('\n')
		case prog.Return:
			if st.E == nil {
				fmt.Fprintf(sb, "%sreturn\n", indent)
			} else {
				fmt.Fprintf(sb, "%sreturn %s\n", indent, expr(st.E))
			}
		case prog.Nop:
			fmt.Fprintf(sb, "%snop\n", indent)
		case prog.If:
			fmt.Fprintf(sb, "%sif %s {\n", indent, expr(st.Cond))
			printBlock(sb, st.Then, depth+1)
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				printBlock(sb, st.Else, depth+1)
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case prog.While:
			fmt.Fprintf(sb, "%swhile %s {\n", indent, expr(st.Cond))
			printBlock(sb, st.Body, depth+1)
			fmt.Fprintf(sb, "%s}\n", indent)
		default:
			fmt.Fprintf(sb, "%s# unprintable statement %T\n", indent, s)
		}
	}
}

// ctxSuffix renders an explicit allocation-context expression.
func ctxSuffix(e prog.Expr) string {
	if e == nil {
		return ""
	}
	return " ctx " + expr(e)
}

// addr folds a Base+Off pair (the AST form) into one expression string
// (the textual form).
func addr(base, off prog.Expr) string {
	if off == nil {
		return expr(base)
	}
	if c, ok := off.(prog.Const); ok && c.V == 0 {
		return expr(base)
	}
	return fmt.Sprintf("(%s + %s)", expr(base), expr(off))
}

var opText = map[prog.BinOp]string{
	prog.OpAdd: "+", prog.OpSub: "-", prog.OpMul: "*", prog.OpDiv: "/",
	prog.OpMod: "%", prog.OpAnd: "&", prog.OpOr: "|", prog.OpXor: "^",
	prog.OpShl: "<<", prog.OpShr: ">>", prog.OpLt: "<", prog.OpLe: "<=",
	prog.OpEq: "==", prog.OpNe: "!=", prog.OpGt: ">", prog.OpGe: ">=",
}

// expr renders an expression, fully parenthesizing nested operations
// so precedence never needs reconstructing.
func expr(e prog.Expr) string {
	switch ex := e.(type) {
	case prog.Const:
		return fmt.Sprintf("%d", ex.V)
	case prog.Var:
		return ex.Name
	case prog.InputLen:
		return "inputlen"
	case prog.InputRemaining:
		return "inputrem"
	case prog.Global:
		return fmt.Sprintf("global(%s)", ex.Name)
	case prog.Bin:
		return fmt.Sprintf("(%s %s %s)", expr(ex.A), opText[ex.Op], expr(ex.B))
	default:
		return fmt.Sprintf("/*%T*/0", e)
	}
}

// quote renders a byte string as a progtext string literal.
func quote(data []byte) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for _, b := range data {
		switch {
		case b == '"':
			sb.WriteString(`\"`)
		case b == '\\':
			sb.WriteString(`\\`)
		case b == '\n':
			sb.WriteString(`\n`)
		case b == '\t':
			sb.WriteString(`\t`)
		case b >= 0x20 && b < 0x7F:
			sb.WriteByte(b)
		default:
			fmt.Fprintf(&sb, `\x%02x`, b)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}
