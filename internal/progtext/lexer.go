// Package progtext implements a textual format for the programs the
// system protects, so the command-line tools can analyze and defend
// user-authored programs rather than only the built-in corpus.
//
// The format is line-oriented and small. A complete vulnerable server:
//
//	program echo
//
//	func main {
//	    call handle
//	}
//
//	func handle {
//	    alloc reply = malloc(64)
//	    alloc key = malloc(64)
//	    storebytes key, "session-key"
//	    memset reply, 46, 64
//	    input len, 2
//	    output reply, len        # the bug: attacker-controlled length
//	}
//
// Statements: let, alloc, realloc, free, load, store, storevar,
// storebytes, memcpy, memset, input, output, outputvar, call, return,
// nop, and if/while blocks. Expressions support the usual integer
// operators with C precedence, plus the intrinsics inputlen and
// inputrem. See the package tests for the full grammar by example.
package progtext

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/multi char operators and delimiters
	tokNewline
)

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	num  uint64
	str  []byte // decoded string literal
	line int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of file"
	case tokNewline:
		return "end of line"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer tokenizes progtext source.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1}
}

// punctuation, longest first so the scanner is greedy.
var puncts = []string{
	"<<", ">>", "<=", ">=", "==", "!=",
	"(", ")", "{", "}", ",", "=", "+", "-", "*", "/", "%", "&", "|", "^", "<", ">",
}

// next returns the next token. Newlines are significant (statement
// terminators) and returned as tokens; runs collapse to one.
func (lx *lexer) next() (token, error) {
	// Skip horizontal whitespace and comments.
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			lx.pos++
			continue
		}
		if c == '#' {
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
			continue
		}
		break
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: lx.line}, nil
	}
	c := lx.src[lx.pos]

	if c == '\n' {
		t := token{kind: tokNewline, line: lx.line}
		for lx.pos < len(lx.src) {
			switch lx.src[lx.pos] {
			case '\n':
				lx.line++
				lx.pos++
			case ' ', '\t', '\r':
				lx.pos++
			case '#':
				for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
					lx.pos++
				}
			default:
				return t, nil
			}
		}
		return t, nil
	}

	if isIdentStart(c) {
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.src[start:lx.pos], line: lx.line}, nil
	}

	if c >= '0' && c <= '9' {
		start := lx.pos
		base := uint64(10)
		if c == '0' && lx.pos+1 < len(lx.src) && (lx.src[lx.pos+1] == 'x' || lx.src[lx.pos+1] == 'X') {
			base = 16
			lx.pos += 2
		}
		digits := 0
		var v uint64
		for lx.pos < len(lx.src) {
			d := lx.src[lx.pos]
			var dv uint64
			switch {
			case d >= '0' && d <= '9':
				dv = uint64(d - '0')
			case base == 16 && d >= 'a' && d <= 'f':
				dv = uint64(d-'a') + 10
			case base == 16 && d >= 'A' && d <= 'F':
				dv = uint64(d-'A') + 10
			case d == '_':
				lx.pos++
				continue
			default:
				goto done
			}
			if dv >= base {
				return token{}, fmt.Errorf("line %d: bad digit %q", lx.line, d)
			}
			v = v*base + dv
			digits++
			lx.pos++
		}
	done:
		if digits == 0 {
			return token{}, fmt.Errorf("line %d: malformed number %q", lx.line, lx.src[start:lx.pos])
		}
		return token{kind: tokNumber, text: lx.src[start:lx.pos], num: v, line: lx.line}, nil
	}

	if c == '"' {
		lx.pos++
		var out []byte
		for {
			if lx.pos >= len(lx.src) {
				return token{}, fmt.Errorf("line %d: unterminated string", lx.line)
			}
			ch := lx.src[lx.pos]
			lx.pos++
			switch ch {
			case '"':
				return token{kind: tokString, str: out, line: lx.line}, nil
			case '\n':
				return token{}, fmt.Errorf("line %d: newline in string", lx.line)
			case '\\':
				if lx.pos >= len(lx.src) {
					return token{}, fmt.Errorf("line %d: dangling escape", lx.line)
				}
				esc := lx.src[lx.pos]
				lx.pos++
				switch esc {
				case 'n':
					out = append(out, '\n')
				case 't':
					out = append(out, '\t')
				case '\\', '"':
					out = append(out, esc)
				case 'x':
					if lx.pos+1 >= len(lx.src) {
						return token{}, fmt.Errorf("line %d: truncated \\x escape", lx.line)
					}
					hi, ok1 := hexVal(lx.src[lx.pos])
					lo, ok2 := hexVal(lx.src[lx.pos+1])
					if !ok1 || !ok2 {
						return token{}, fmt.Errorf("line %d: bad \\x escape", lx.line)
					}
					out = append(out, hi<<4|lo)
					lx.pos += 2
				default:
					return token{}, fmt.Errorf("line %d: unknown escape \\%c", lx.line, esc)
				}
			default:
				out = append(out, ch)
			}
		}
	}

	for _, p := range puncts {
		if strings.HasPrefix(lx.src[lx.pos:], p) {
			lx.pos += len(p)
			return token{kind: tokPunct, text: p, line: lx.line}, nil
		}
	}
	return token{}, fmt.Errorf("line %d: unexpected character %q", lx.line, c)
}

// rawWord scans a whitespace-delimited word directly from the source,
// bypassing tokenization. Program names may contain characters (like
// '-') that are operators elsewhere, so the "program" header consumes
// its name this way.
func (lx *lexer) rawWord() (string, error) {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' {
			lx.pos++
			continue
		}
		break
	}
	start := lx.pos
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '#' {
			break
		}
		lx.pos++
	}
	if lx.pos == start {
		return "", fmt.Errorf("line %d: expected a name", lx.line)
	}
	return lx.src[start:lx.pos], nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	default:
		return 0, false
	}
}
