package progtext

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/prog"
)

// Parse reads progtext source into a linked Program.
func Parse(src string) (*prog.Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	program, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := prog.Link(program); err != nil {
		return nil, fmt.Errorf("progtext: %w", err)
	}
	return program, nil
}

type parser struct {
	lx  *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("progtext: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
}

// expectPunct consumes a specific punctuation token.
func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return p.errf("expected %q, found %s", s, p.tok)
	}
	return p.advance()
}

// expectIdent consumes and returns an identifier.
func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", p.errf("expected identifier, found %s", p.tok)
	}
	name := p.tok.text
	return name, p.advance()
}

// skipNewlines consumes any newline tokens.
func (p *parser) skipNewlines() error {
	for p.tok.kind == tokNewline {
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

// endOfStmt consumes the statement terminator (newline, or lookahead
// at a closing brace / EOF).
func (p *parser) endOfStmt() error {
	switch {
	case p.tok.kind == tokNewline:
		return p.advance()
	case p.tok.kind == tokEOF:
		return nil
	case p.tok.kind == tokPunct && p.tok.text == "}":
		return nil
	default:
		return p.errf("expected end of statement, found %s", p.tok)
	}
}

func (p *parser) parseProgram() (*prog.Program, error) {
	out := &prog.Program{Funcs: make(map[string]*prog.Func)}
	if err := p.skipNewlines(); err != nil {
		return nil, err
	}
	// Optional "program NAME" header; the name is a raw word so it may
	// contain characters that are operators elsewhere (400.perlbench,
	// samate-ofw-malloc-d1).
	if p.tok.kind == tokIdent && p.tok.text == "program" {
		name, err := p.lx.rawWord()
		if err != nil {
			return nil, err
		}
		out.Name = name
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
	}
	if out.Name == "" {
		out.Name = "program"
	}
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokEOF {
			break
		}
		if p.tok.kind != tokIdent || p.tok.text != "func" {
			return nil, p.errf("expected func, found %s", p.tok)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		if _, dup := out.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("progtext: duplicate function %q", f.Name)
		}
		out.Funcs[f.Name] = f
	}
	return out, nil
}

func (p *parser) parseFunc() (*prog.Func, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	f := &prog.Func{Name: name}
	// Optional parameter list.
	if p.tok.kind == tokPunct && p.tok.text == "(" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		for p.tok.kind == tokIdent {
			f.Params = append(f.Params, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

// parseBlock parses "{ stmts }".
func (p *parser) parseBlock() ([]prog.Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var body []prog.Stmt
	for {
		if err := p.skipNewlines(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokPunct && p.tok.text == "}" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return body, nil
		}
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		body = append(body, st)
	}
}

func (p *parser) parseStmt() (prog.Stmt, error) {
	if p.tok.kind != tokIdent {
		return nil, p.errf("expected statement, found %s", p.tok)
	}
	kw := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	switch kw {
	case "let":
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.Assign{Dst: dst, E: e}, p.endOfStmt()

	case "setglobal":
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.SetGlobal{Dst: dst, E: e}, p.endOfStmt()

	case "alloc":
		return p.parseAlloc()

	case "realloc":
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		fn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if fn != "realloc" {
			return nil, p.errf("realloc statement requires realloc(ptr, size)")
		}
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		if len(args) != 2 {
			return nil, p.errf("realloc takes (ptr, size)")
		}
		ccid, err := p.parseCtxSuffix()
		if err != nil {
			return nil, err
		}
		return prog.ReallocStmt{Dst: dst, Ptr: args[0], Size: args[1], CCID: ccid}, p.endOfStmt()

	case "free":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.FreeStmt{Ptr: e}, p.endOfStmt()

	case "load":
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		addr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.Load{Dst: dst, Base: addr, N: n}, p.endOfStmt()

	case "store":
		addr, src, n, err := p.parseThree()
		if err != nil {
			return nil, err
		}
		return prog.Store{Base: addr, Src: src, N: n}, p.endOfStmt()

	case "storevar":
		addr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return prog.StoreVar{Base: addr, Src: name}, p.endOfStmt()

	case "storebytes":
		addr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, p.errf("storebytes requires a string literal")
		}
		data := append([]byte(nil), p.tok.str...)
		if err := p.advance(); err != nil {
			return nil, err
		}
		return prog.StoreBytes{Base: addr, Data: data}, p.endOfStmt()

	case "memcpy":
		dst, src, n, err := p.parseThree()
		if err != nil {
			return nil, err
		}
		return prog.Memcpy{Dst: dst, Src: src, N: n}, p.endOfStmt()

	case "memset":
		dst, b, n, err := p.parseThree()
		if err != nil {
			return nil, err
		}
		return prog.Memset{Dst: dst, B: b, N: n}, p.endOfStmt()

	case "input":
		dst, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		if p.tok.kind == tokIdent && p.tok.text == "rest" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			return prog.ReadInput{Dst: dst, N: prog.InputRemaining{}}, p.endOfStmt()
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.ReadInput{Dst: dst, N: n}, p.endOfStmt()

	case "output":
		addr, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
		n, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.Output{Base: addr, N: n}, p.endOfStmt()

	case "outputvar":
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return prog.OutputVar{Src: name}, p.endOfStmt()

	case "call":
		return p.parseCall()

	case "return":
		if p.tok.kind == tokNewline || p.tok.kind == tokEOF ||
			(p.tok.kind == tokPunct && p.tok.text == "}") {
			return prog.Return{}, p.endOfStmt()
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return prog.Return{E: e}, p.endOfStmt()

	case "nop":
		return prog.Nop{}, p.endOfStmt()

	case "if":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		st := prog.If{Cond: cond, Then: then}
		if p.tok.kind == tokIdent && p.tok.text == "else" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, p.endOfStmt()

	case "while":
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return prog.While{Cond: cond, Body: body}, p.endOfStmt()

	default:
		return nil, p.errf("unknown statement %q", kw)
	}
}

// parseAlloc parses "alloc DST = fn(args...)".
func (p *parser) parseAlloc() (prog.Stmt, error) {
	dst, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	fnName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	fn, err := heapsim.ParseAllocFn(fnName)
	if err != nil {
		return nil, p.errf("unknown allocation function %q", fnName)
	}
	args, err := p.parseArgs()
	if err != nil {
		return nil, err
	}
	st := prog.Alloc{Dst: dst, Fn: fn}
	switch fn {
	case heapsim.FnMalloc:
		if len(args) != 1 {
			return nil, p.errf("malloc takes (size)")
		}
		st.Size = args[0]
	case heapsim.FnCalloc:
		if len(args) != 2 {
			return nil, p.errf("calloc takes (n, size)")
		}
		st.N, st.Size = args[0], args[1]
	case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
		if len(args) != 2 {
			return nil, p.errf("%s takes (align, size)", fnName)
		}
		st.Align, st.Size = args[0], args[1]
	case heapsim.FnRealloc:
		return nil, p.errf("use the realloc statement for realloc")
	}
	ccid, err := p.parseCtxSuffix()
	if err != nil {
		return nil, err
	}
	st.CCID = ccid
	return st, p.endOfStmt()
}

// parseCtxSuffix parses the optional "ctx EXPR" trailer carrying an
// explicit allocation-context expression (emitted by the
// instrumentation rewriter).
func (p *parser) parseCtxSuffix() (prog.Expr, error) {
	if p.tok.kind != tokIdent || p.tok.text != "ctx" {
		return nil, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseExpr()
}

// parseCall parses "call [DST =] fn(args...)" or "call fn".
func (p *parser) parseCall() (prog.Stmt, error) {
	first, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := prog.Call{Callee: first}
	if p.tok.kind == tokPunct && p.tok.text == "=" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		st.Dst = first
		callee, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Callee = callee
	}
	if p.tok.kind == tokPunct && p.tok.text == "(" {
		args, err := p.parseArgs()
		if err != nil {
			return nil, err
		}
		st.Args = args
	}
	return st, p.endOfStmt()
}

// parseArgs parses "(expr, expr, ...)".
func (p *parser) parseArgs() ([]prog.Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []prog.Expr
	if p.tok.kind == tokPunct && p.tok.text == ")" {
		return args, p.advance()
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return nil, err
			}
			continue
		}
		return args, p.expectPunct(")")
	}
}

// parseThree parses "expr, expr, expr".
func (p *parser) parseThree() (a, b, c prog.Expr, err error) {
	if a, err = p.parseExpr(); err != nil {
		return
	}
	if err = p.expectPunct(","); err != nil {
		return
	}
	if b, err = p.parseExpr(); err != nil {
		return
	}
	if err = p.expectPunct(","); err != nil {
		return
	}
	c, err = p.parseExpr()
	return
}

// --- expressions (precedence climbing) --------------------------------------

// binding powers per operator, C-like.
var binOps = map[string]struct {
	prec int
	op   prog.BinOp
}{
	"|":  {1, prog.OpOr},
	"^":  {2, prog.OpXor},
	"&":  {3, prog.OpAnd},
	"==": {4, prog.OpEq},
	"!=": {4, prog.OpNe},
	"<":  {5, prog.OpLt},
	"<=": {5, prog.OpLe},
	">":  {5, prog.OpGt},
	">=": {5, prog.OpGe},
	"<<": {6, prog.OpShl},
	">>": {6, prog.OpShr},
	"+":  {7, prog.OpAdd},
	"-":  {7, prog.OpSub},
	"*":  {8, prog.OpMul},
	"/":  {8, prog.OpDiv},
	"%":  {8, prog.OpMod},
}

func (p *parser) parseExpr() (prog.Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(minPrec int) (prog.Expr, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokPunct {
		info, ok := binOps[p.tok.text]
		if !ok || info.prec < minPrec {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseBin(info.prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = prog.Bin{Op: info.op, A: lhs, B: rhs}
	}
	return lhs, nil
}

func (p *parser) parsePrimary() (prog.Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		v := p.tok.num
		return prog.Const{V: v}, p.advance()
	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch name {
		case "inputlen":
			return prog.InputLen{}, nil
		case "inputrem":
			return prog.InputRemaining{}, nil
		case "global":
			if p.tok.kind == tokPunct && p.tok.text == "(" {
				if err := p.advance(); err != nil {
					return nil, err
				}
				gname, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				return prog.Global{Name: gname}, p.expectPunct(")")
			}
			return prog.Var{Name: name}, nil
		default:
			return prog.Var{Name: name}, nil
		}
	case p.tok.kind == tokPunct && p.tok.text == "(":
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	default:
		return nil, p.errf("expected expression, found %s", p.tok)
	}
}
