package progtext

import (
	"testing"

	"heaptherapy/internal/vuln"
)

// FuzzParse throws arbitrary bytes at the parser: it must never panic,
// and anything it accepts must survive a print/parse round trip.
// `go test` exercises the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	f.Add(echoServer)
	f.Add("program x\n\nfunc main {\n nop\n}\n")
	f.Add("func main {\n alloc p = malloc(64) ctx global(__cc_v)\n free p\n}\n")
	f.Add("func main {\n setglobal g = 1 + 2 * 3\n let x = global(g)\n}\n")
	f.Add("func main {\n storebytes 0, \"\\x41\\\\\\\"\"\n}")
	for _, c := range vuln.Named() {
		f.Add(Print(c.Program))
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		text := Print(p)
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form of accepted input does not re-parse: %v\n--- input ---\n%s\n--- printed ---\n%s", err, src, text)
		}
		if Print(back) != text {
			t.Fatalf("print is not a fixed point for accepted input:\n%s", src)
		}
	})
}
