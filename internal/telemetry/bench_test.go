package telemetry

import "testing"

// TestDisabledPathZeroAlloc pins the zero-overhead contract for the
// disabled state: every Scope method on a nil receiver must be free of
// heap allocation (it is a single nil check).
func TestDisabledPathZeroAlloc(t *testing.T) {
	var s *Scope
	if n := testing.AllocsPerRun(1000, func() {
		s.Inc(CtrAllocs)
		s.Add(CtrFrees, 3)
		s.Observe(HistAllocSize, 64)
		s.Event(EvPatchHit, 1, 2, 3)
	}); n != 0 {
		t.Errorf("disabled telemetry allocates %.1f allocs/op, want 0", n)
	}
}

// TestEnabledCounterPathZeroAlloc pins the enabled counter and event
// paths: atomics into preallocated shards and ring slots, no heap
// traffic per operation.
func TestEnabledCounterPathZeroAlloc(t *testing.T) {
	s := New(Config{Shards: 2, RingSize: 64}).Scope()
	if n := testing.AllocsPerRun(1000, func() {
		s.Inc(CtrAllocs)
		s.Observe(HistAllocSize, 64)
		s.Event(EvPatchHit, 1, 2, 3)
	}); n != 0 {
		t.Errorf("enabled telemetry hot path allocates %.1f allocs/op, want 0", n)
	}
}

func BenchmarkScopeDisabled(b *testing.B) {
	var s *Scope
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(CtrAllocs)
		s.Observe(HistAllocSize, uint64(i))
	}
}

func BenchmarkScopeInc(b *testing.B) {
	s := New(Config{Shards: 8, RingSize: 64}).Scope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Inc(CtrAllocs)
	}
}

func BenchmarkScopeObserve(b *testing.B) {
	s := New(Config{Shards: 8, RingSize: 64}).Scope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Observe(HistAllocSize, uint64(i))
	}
}

func BenchmarkRingPush(b *testing.B) {
	s := New(Config{Shards: 1, RingSize: 1024}).Scope()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Event(EvPatchHit, uint64(i), uint64(i), 0)
	}
}

func BenchmarkScopeIncParallel(b *testing.B) {
	c := New(Config{Shards: 16, RingSize: 64})
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		s := c.Scope()
		for pb.Next() {
			s.Inc(CtrAllocs)
		}
	})
}
