package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Snapshot is a point-in-time export of a collector: merged counter
// totals, per-shard (per-tenant-group) counters, histogram buckets,
// and the retained event trace. Snapshots are plain data — safe to
// serialize, diff, and merge across fleets.
type Snapshot struct {
	// Tenants is how many scopes the collector issued.
	Tenants uint32 `json:"tenants"`
	// Counters maps counter name to merged total; zero counters are
	// omitted.
	Counters map[string]uint64 `json:"counters"`
	// PerShard breaks counters down by shard. With one tenant per
	// shard (a fleet of at most Shards workers) this is per-tenant
	// aggregation; shards with no activity are omitted.
	PerShard []ShardCounters `json:"per_shard,omitempty"`
	// Histograms holds the non-empty histograms.
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
	// EventsTotal counts every event ever pushed, including those the
	// ring has since overwritten.
	EventsTotal uint64 `json:"events_total"`
	// Events is the retained trace, oldest first.
	Events []Event `json:"events,omitempty"`
}

// ShardCounters is one shard's counter totals.
type ShardCounters struct {
	Shard    int               `json:"shard"`
	Counters map[string]uint64 `json:"counters"`
}

// HistogramSnapshot is one histogram's non-empty buckets.
type HistogramSnapshot struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket: Count values in [Lo, Hi].
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Snapshot exports the collector's current state. It is safe to call
// concurrently with writers: counters are read atomically (the set is
// not one atomic cut across counters), and events caught mid-write are
// skipped.
func (c *Collector) Snapshot() *Snapshot {
	s := &Snapshot{
		Tenants:     c.scopes.Load(),
		Counters:    map[string]uint64{},
		EventsTotal: c.ring.total(),
		Events:      c.ring.snapshot(),
	}
	for si := range c.shards {
		sh := &c.shards[si]
		var per map[string]uint64
		for ci := CounterID(0); ci < NumCounters; ci++ {
			v := sh.counters[ci].Load()
			if v == 0 {
				continue
			}
			s.Counters[ci.String()] += v
			if per == nil {
				per = map[string]uint64{}
			}
			per[ci.String()] += v
		}
		if per != nil {
			s.PerShard = append(s.PerShard, ShardCounters{Shard: si, Counters: per})
		}
	}
	for hi := HistogramID(0); hi < NumHistograms; hi++ {
		hs := HistogramSnapshot{Name: hi.String()}
		var buckets [NumBuckets]uint64
		for si := range c.shards {
			for b := 0; b < NumBuckets; b++ {
				buckets[b] += c.shards[si].hist[hi][b].Load()
			}
		}
		for b := 0; b < NumBuckets; b++ {
			if buckets[b] == 0 {
				continue
			}
			lo, hi := BucketBounds(b)
			hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Hi: hi, Count: buckets[b]})
			hs.Count += buckets[b]
		}
		if hs.Count > 0 {
			s.Histograms = append(s.Histograms, hs)
		}
	}
	return s
}

// Merge folds other into s: counters and histogram buckets add,
// events concatenate (other's after s's, re-sequenced to stay
// monotonic), tenant counts add. Use it to aggregate snapshots from
// several collectors — e.g. per-fleet snapshots at a higher level.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	s.Tenants += other.Tenants
	for name, v := range other.Counters {
		if s.Counters == nil {
			s.Counters = map[string]uint64{}
		}
		s.Counters[name] += v
	}
	for _, ps := range other.PerShard {
		merged := false
		for i := range s.PerShard {
			if s.PerShard[i].Shard == ps.Shard {
				for name, v := range ps.Counters {
					s.PerShard[i].Counters[name] += v
				}
				merged = true
				break
			}
		}
		if !merged {
			cp := ShardCounters{Shard: ps.Shard, Counters: map[string]uint64{}}
			for name, v := range ps.Counters {
				cp.Counters[name] = v
			}
			s.PerShard = append(s.PerShard, cp)
		}
	}
	for _, oh := range other.Histograms {
		target := -1
		for i := range s.Histograms {
			if s.Histograms[i].Name == oh.Name {
				target = i
				break
			}
		}
		if target < 0 {
			cp := HistogramSnapshot{Name: oh.Name, Count: oh.Count}
			cp.Buckets = append(cp.Buckets, oh.Buckets...)
			s.Histograms = append(s.Histograms, cp)
			continue
		}
		th := &s.Histograms[target]
		th.Count += oh.Count
		for _, ob := range oh.Buckets {
			found := false
			for i := range th.Buckets {
				if th.Buckets[i].Lo == ob.Lo {
					th.Buckets[i].Count += ob.Count
					found = true
					break
				}
			}
			if !found {
				th.Buckets = append(th.Buckets, ob)
			}
		}
	}
	base := s.EventsTotal
	s.EventsTotal += other.EventsTotal
	for _, e := range other.Events {
		e.Seq += base
		s.Events = append(s.Events, e)
	}
}

// Counter returns one merged counter total by ID.
func (s *Snapshot) Counter(id CounterID) uint64 { return s.Counters[id.String()] }

// EventsOfKind filters the retained trace by kind.
func (s *Snapshot) EventsOfKind(kind EventKind) []Event {
	var out []Event
	for _, e := range s.Events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Map keys are
// serialized in sorted order, so the output is deterministic for a
// deterministic execution.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Render formats the snapshot as a human-readable table.
func (s *Snapshot) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry: %d tenant(s), %d event(s) recorded (%d retained)\n",
		s.Tenants, s.EventsTotal, len(s.Events))
	fmt.Fprintf(&b, "counters:\n")
	if len(s.Counters) == 0 {
		fmt.Fprintf(&b, "  (none)\n")
	}
	// Fixed ID order keeps the table stable and groups related
	// counters, unlike map-key order.
	for id := CounterID(0); id < NumCounters; id++ {
		if v, ok := s.Counters[id.String()]; ok {
			fmt.Fprintf(&b, "  %-22s %12d\n", id.String(), v)
		}
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "histogram %s (n=%d):\n", h.Name, h.Count)
		for _, bk := range h.Buckets {
			hi := fmt.Sprint(bk.Hi)
			if bk.Hi == ^uint64(0) {
				hi = "inf"
			}
			fmt.Fprintf(&b, "  [%d..%s] %d\n", bk.Lo, hi, bk.Count)
		}
	}
	if len(s.Events) > 0 {
		const tail = 16
		events := s.Events
		if len(events) > tail {
			fmt.Fprintf(&b, "events (last %d of %d retained):\n", tail, len(events))
			events = events[len(events)-tail:]
		} else {
			fmt.Fprintf(&b, "events:\n")
		}
		for _, e := range events {
			fmt.Fprintf(&b, "  %s\n", e)
		}
	}
	return b.String()
}
