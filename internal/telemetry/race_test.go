package telemetry

import (
	"sync"
	"testing"
)

// TestConcurrentCountersNoLostIncrements hammers shared scopes from
// many goroutines while a reader snapshots continuously, then checks
// the final totals are exact. Run under -race this also proves the
// shard/ring protocols are data-race free.
func TestConcurrentCountersNoLostIncrements(t *testing.T) {
	const (
		writers = 8
		perG    = 5000
	)
	c := New(Config{Shards: 4, RingSize: 256})
	scopes := make([]*Scope, writers)
	for i := range scopes {
		scopes[i] = c.Scope()
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := c.Snapshot()
				// Mid-run totals must never exceed the final total.
				if got := snap.Counter(CtrAllocs); got > writers*perG {
					t.Errorf("snapshot over-counted: %d", got)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(s *Scope, g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Inc(CtrAllocs)
				s.Add(CtrPatchHits, 2)
				s.Observe(HistAllocSize, uint64(i%512))
				if i%16 == 0 {
					s.Event(EvPatchHit, uint64(i), PackSite(1, uint64(i)), uint64(g))
				}
			}
		}(scopes[g], g)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := c.Snapshot()
	if got, want := snap.Counter(CtrAllocs), uint64(writers*perG); got != want {
		t.Errorf("allocs = %d, want %d (lost increments)", got, want)
	}
	if got, want := snap.Counter(CtrPatchHits), uint64(2*writers*perG); got != want {
		t.Errorf("patch_hits = %d, want %d (lost increments)", got, want)
	}
	var histTotal uint64
	for _, h := range snap.Histograms {
		if h.Name == HistAllocSize.String() {
			histTotal = h.Count
		}
	}
	if want := uint64(writers * perG); histTotal != want {
		t.Errorf("histogram count = %d, want %d", histTotal, want)
	}
	wantEvents := uint64(writers * ((perG + 15) / 16))
	if snap.EventsTotal != wantEvents {
		t.Errorf("events total = %d, want %d", snap.EventsTotal, wantEvents)
	}
	if len(snap.Events) != 256 {
		t.Errorf("retained events = %d, want full ring 256", len(snap.Events))
	}
	// With quiesced writers every retained event must be consistent:
	// sequence numbers strictly increasing, payload fields coherent.
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Seq <= snap.Events[i-1].Seq {
			t.Fatalf("non-monotonic seqs after quiesce: %d then %d",
				snap.Events[i-1].Seq, snap.Events[i].Seq)
		}
	}
	for _, e := range snap.Events {
		if e.Kind != EvPatchHit || SiteCCID(e.Site) != e.CCID || e.Arg >= writers {
			t.Fatalf("torn event survived snapshot: %+v", e)
		}
	}
}

// TestConcurrentScopeIssue checks Scope() itself is safe to call
// concurrently and hands out distinct tenants.
func TestConcurrentScopeIssue(t *testing.T) {
	c := New(Config{Shards: 2, RingSize: 16})
	const n = 32
	tenants := make([]uint32, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := c.Scope()
			s.Inc(CtrRequests)
			tenants[i] = s.Tenant()
		}(i)
	}
	wg.Wait()
	seen := map[uint32]bool{}
	for _, tn := range tenants {
		if seen[tn] {
			t.Fatalf("tenant %d issued twice", tn)
		}
		seen[tn] = true
	}
	if got := c.Snapshot().Counter(CtrRequests); got != n {
		t.Errorf("requests = %d, want %d", got, n)
	}
	if c.Tenants() != n {
		t.Errorf("Tenants() = %d, want %d", c.Tenants(), n)
	}
}
