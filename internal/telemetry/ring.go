package telemetry

import (
	"sort"
	"sync/atomic"
)

// ring is the lock-free bounded event trace: a flight recorder that
// retains the most recent capacity events. Writers claim a global
// position with one atomic add and publish the slot with a per-slot
// sequence word; a reader validates each slot's sequence before and
// after copying it, so a concurrent snapshot never observes a torn
// event (it skips slots caught mid-write instead).
//
// Every slot word is accessed atomically, which keeps the protocol
// clean under the race detector; no locks, no allocation on the write
// path.
type ring struct {
	slots []eslot
	mask  uint64
	pos   atomic.Uint64 // next position to claim; also the total pushed
}

// eslot is one ring entry. seq is 0 while empty or mid-write and
// position+1 once published; because positions are globally unique, a
// reader that sees the same nonzero seq before and after copying the
// payload words has a consistent event.
type eslot struct {
	seq  atomic.Uint64
	meta atomic.Uint64 // kind in the low byte, tenant above
	ccid atomic.Uint64
	site atomic.Uint64
	arg  atomic.Uint64
}

func (r *ring) init(capacity int) {
	r.slots = make([]eslot, capacity)
	r.mask = uint64(capacity - 1)
}

// push claims the next position and publishes one event, overwriting
// the oldest entry once the ring has wrapped.
func (r *ring) push(kind EventKind, tenant uint32, ccid, site, arg uint64) {
	pos := r.pos.Add(1) - 1
	s := &r.slots[pos&r.mask]
	s.seq.Store(0) // invalidate for concurrent readers
	s.meta.Store(uint64(kind) | uint64(tenant)<<8)
	s.ccid.Store(ccid)
	s.site.Store(site)
	s.arg.Store(arg)
	s.seq.Store(pos + 1)
}

// total reports how many events have ever been pushed (retained or
// overwritten).
func (r *ring) total() uint64 { return r.pos.Load() }

// reset empties the ring in place: every slot is invalidated and the
// position counter rewinds, so a subsequent push sequence is
// indistinguishable from one on a freshly initialized ring.
func (r *ring) reset() {
	for i := range r.slots {
		r.slots[i].seq.Store(0)
	}
	r.pos.Store(0)
}

// snapshot copies every currently consistent slot, oldest first.
// Slots caught mid-write are skipped; with quiesced writers the result
// is exactly the last min(total, capacity) events.
func (r *ring) snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		v1 := s.seq.Load()
		if v1 == 0 {
			continue
		}
		meta := s.meta.Load()
		e := Event{
			Seq:    v1 - 1,
			Kind:   EventKind(meta & 0xFF),
			Tenant: uint32(meta >> 8),
			CCID:   s.ccid.Load(),
			Site:   s.site.Load(),
			Arg:    s.arg.Load(),
		}
		if s.seq.Load() != v1 {
			continue // overwritten while copying
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
