// Package telemetry is the runtime observability layer: low-overhead
// counters, fixed-bucket histograms, and a lock-free event trace that
// every layer of the defended stack (allocator, defense, shadow
// analysis, fleet runtime) reports into, so a campaign or a serving
// fleet can explain WHAT happened — which patches fired, how often, at
// which allocation sites, and what checking cost — instead of just
// pass/fail.
//
// Design constraints, in order:
//
//  1. Disabled must be free. Every instrumentation point in the hot
//     paths is guarded by a nil check on a *Scope field; a nil Scope
//     is the disabled state and costs one predictable branch. The
//     zero-alloc pins in the instrumented packages and the CI
//     telemetry-pin step hold this contract.
//  2. Enabled must be lock-free. Counters and histogram buckets are
//     atomic adds into per-tenant shards; the event ring claims slots
//     with one atomic add and publishes them with a per-slot sequence
//     word (a seqlock), so writers never block and a concurrent
//     snapshot never tears an event.
//  3. Counters are exact, events are best-effort. Concurrent
//     increments are never lost (the -race concurrency tests assert
//     this); ring entries may be overwritten by newer events once the
//     ring wraps, which is the usual flight-recorder trade.
//
// The package is a leaf: it imports only the standard library, so the
// memory simulator, the allocators, and the defense layers can all
// report into it without import cycles.
package telemetry

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// CounterID names one monotonic counter. Counters are namespaced by
// the layer that owns the increment so cross-layer totals never double
// count: allocator traffic is counted by heapsim (beneath any defense
// layer), defense activity by the Defender, faults by the space.
type CounterID uint8

// Counters.
const (
	// CtrAllocs counts allocator-level allocations (malloc, calloc,
	// memalign, and the allocating half of realloc).
	CtrAllocs CounterID = iota
	// CtrFrees counts allocator-level frees of live pointers.
	CtrFrees
	// CtrPatchHits counts allocations the defense recognized as
	// vulnerable (a patch-table hit with a nonzero type mask).
	CtrPatchHits
	// CtrGuardPages counts guard pages installed by the defense.
	CtrGuardPages
	// CtrZeroFills counts buffers zero-initialized against
	// uninitialized reads.
	CtrZeroFills
	// CtrDeferredFrees counts blocks parked in a deferred-free
	// quarantine (defense FIFO or shadow freed-block queue).
	CtrDeferredFrees
	// CtrQuarantineRefusals counts blocks a quarantine declined to
	// hold: quota-forced evictions and filter-rejected deferrals.
	CtrQuarantineRefusals
	// CtrDoubleFrees counts double frees rejected by the defense.
	CtrDoubleFrees
	// CtrFaults counts access violations reported by the simulated
	// address space.
	CtrFaults
	// CtrGuardFaults counts faults that landed on a guard page — an
	// overflow the defense stopped.
	CtrGuardFaults
	// CtrShadowWarnings counts warnings recorded by the shadow-memory
	// analyzer.
	CtrShadowWarnings
	// CtrQuanta counts interpreter quanta observed via the quantum
	// hook.
	CtrQuanta
	// CtrRequests counts requests served by the fleet runtime.
	CtrRequests
	// CtrCrashes counts served requests that ended in a fault.
	CtrCrashes
	// CtrRejected counts requests turned away by admission control
	// (saturation or quota) before reaching a worker.
	CtrRejected
	// CtrRollouts counts live patch rollouts: sealed-table swaps
	// triggered by trapped crashes.
	CtrRollouts
	// CtrRolloutFails counts rollout attempts that failed (shadow
	// re-analysis or table build/swap) and left the old table serving.
	CtrRolloutFails
	// CtrBoundsFaults counts accesses rejected by a per-object bounds
	// check (the ShadowBound policy's containment firing).
	CtrBoundsFaults

	// NumCounters is the number of counter IDs.
	NumCounters
)

var counterNames = [NumCounters]string{
	CtrAllocs:             "allocs",
	CtrFrees:              "frees",
	CtrPatchHits:          "patch_hits",
	CtrGuardPages:         "guard_pages",
	CtrZeroFills:          "zero_fills",
	CtrDeferredFrees:      "deferred_frees",
	CtrQuarantineRefusals: "quarantine_refusals",
	CtrDoubleFrees:        "double_frees",
	CtrFaults:             "faults",
	CtrGuardFaults:        "guard_faults",
	CtrShadowWarnings:     "shadow_warnings",
	CtrQuanta:             "quanta",
	CtrRequests:           "requests",
	CtrCrashes:            "crashes",
	CtrRejected:           "rejected",
	CtrRollouts:           "rollouts",
	CtrRolloutFails:       "rollout_fails",
	CtrBoundsFaults:       "bounds_faults",
}

func (c CounterID) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("CounterID(%d)", uint8(c))
}

// HistogramID names one fixed-bucket histogram.
type HistogramID uint8

// Histograms.
const (
	// HistAllocSize distributes allocation request sizes in bytes, as
	// the allocator sees them.
	HistAllocSize HistogramID = iota
	// HistLookupCycles distributes per-allocation patch-lookup cost in
	// virtual cycles (probes x per-probe cost).
	HistLookupCycles
	// HistQuantumCycles distributes virtual-cycle durations of
	// interpreter quanta, observed through the prog.SetQuantumHook
	// seam.
	HistQuantumCycles

	// NumHistograms is the number of histogram IDs.
	NumHistograms
)

var histogramNames = [NumHistograms]string{
	HistAllocSize:     "alloc_size",
	HistLookupCycles:  "lookup_cycles",
	HistQuantumCycles: "quantum_cycles",
}

func (h HistogramID) String() string {
	if h < NumHistograms {
		return histogramNames[h]
	}
	return fmt.Sprintf("HistogramID(%d)", uint8(h))
}

// NumBuckets is the per-histogram bucket count. Bucket 0 holds zero
// values; bucket i (i >= 1) holds values in [2^(i-1), 2^i); the last
// bucket additionally absorbs everything larger — fixed power-of-two
// buckets, so Observe is a bit-length and an atomic add.
const NumBuckets = 20

// bucketFor maps a value to its bucket index.
func bucketFor(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// BucketBounds reports the [lo, hi] value range of bucket i; the last
// bucket's hi is ^uint64(0) (unbounded).
func BucketBounds(i int) (lo, hi uint64) {
	if i == 0 {
		return 0, 0
	}
	lo = 1 << (i - 1)
	if i == NumBuckets-1 {
		return lo, ^uint64(0)
	}
	return lo, 1<<i - 1
}

// EventKind classifies one trace event.
type EventKind uint8

// Event kinds.
const (
	// EvPatchHit is an allocation recognized as vulnerable: CCID is
	// the allocation-time calling context, Site the packed {FUN, CCID}
	// patch key, Arg the requested size.
	EvPatchHit EventKind = iota + 1
	// EvGuardFault is a fault on a guard page: Arg is the faulting
	// address.
	EvGuardFault
	// EvQuarantineRefusal is a block a quarantine declined to hold
	// (quota eviction or filter rejection): Arg is the block address.
	EvQuarantineRefusal
	// EvDoubleFree is a rejected double free: CCID is the freeing
	// context, Arg the freed address.
	EvDoubleFree
	// EvShadowWarning is a shadow-analysis warning: CCID is the
	// faulting access context, Site the vulnerable buffer's packed
	// allocation {FUN, CCID}, Arg the affected address.
	EvShadowWarning
	// EvFault is an access violation reported by the space: Arg is the
	// faulting address.
	EvFault
	// EvBoundsFault is an access rejected by a per-object bounds check:
	// CCID is the accessing context, Arg the faulting address.
	EvBoundsFault
)

var eventNames = map[EventKind]string{
	EvPatchHit:          "patch-hit",
	EvGuardFault:        "guard-fault",
	EvQuarantineRefusal: "quarantine-refusal",
	EvDoubleFree:        "double-free",
	EvShadowWarning:     "shadow-warning",
	EvFault:             "fault",
	EvBoundsFault:       "bounds-fault",
}

func (k EventKind) String() string {
	if s, ok := eventNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// PackSite folds an allocation-site identity — the paper's {FUN, CCID}
// pair — into one word: the allocation function in the top byte, the
// CCID's low 56 bits below. This mirrors the defense patch table's key
// packing, so a patch-hit event's Site can be compared directly
// against a loaded patch key.
func PackSite(fn uint8, ccid uint64) uint64 {
	return uint64(fn)<<56 | ccid&(1<<56-1)
}

// SiteFn extracts the allocation function from a packed site.
func SiteFn(site uint64) uint8 { return uint8(site >> 56) }

// SiteCCID extracts the CCID's low 56 bits from a packed site.
func SiteCCID(site uint64) uint64 { return site & (1<<56 - 1) }

// Event is one decoded trace entry.
type Event struct {
	// Seq is the global write sequence number (0-based).
	Seq uint64 `json:"seq"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Tenant is the reporting scope's tenant ID.
	Tenant uint32 `json:"tenant"`
	// CCID is the calling-context ID current at the event (meaning
	// varies per kind; see the kind docs).
	CCID uint64 `json:"ccid"`
	// Site is the packed {FUN, CCID} allocation-site identity, 0 when
	// unknown.
	Site uint64 `json:"site"`
	// Arg is the kind-specific payload (size or address).
	Arg uint64 `json:"arg"`
}

func (e Event) String() string {
	return fmt.Sprintf("#%d %s tenant=%d ccid=%#x site=fn%d@%#x arg=%#x",
		e.Seq, e.Kind, e.Tenant, e.CCID, SiteFn(e.Site), SiteCCID(e.Site), e.Arg)
}

// Config parameterizes a Collector. The zero value is the default.
type Config struct {
	// Shards is the counter shard count, rounded up to a power of two
	// (0 = DefaultShards). Tenant t reports into shard t % Shards, so
	// a fleet with at most Shards workers gets per-tenant counter
	// resolution and contention-free increments.
	Shards int
	// RingSize is the event-ring capacity, rounded up to a power of
	// two (0 = DefaultRingSize).
	RingSize int
}

// Defaults for Config.
const (
	DefaultShards   = 8
	DefaultRingSize = 1024
)

// shard is one cache-padded block of counters and histogram buckets.
type shard struct {
	counters [NumCounters]atomic.Uint64
	hist     [NumHistograms][NumBuckets]atomic.Uint64
	_        [64]byte // keep neighboring shards off one cache line
}

// Collector owns the shared telemetry state: counter shards and the
// event ring. All methods are safe for concurrent use; the zero
// Collector is not valid — construct with New.
type Collector struct {
	shards []shard
	smask  uint32
	ring   ring
	scopes atomic.Uint32
}

// New creates a collector.
func New(cfg Config) *Collector {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	ns := ceilPow2(cfg.Shards)
	c := &Collector{shards: make([]shard, ns), smask: uint32(ns - 1)}
	c.ring.init(ceilPow2(cfg.RingSize))
	return c
}

func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Scope issues a handle with the next tenant ID. Scopes are how the
// instrumented layers report: each worker context (or single-run
// pipeline) holds one, and a nil *Scope is the disabled state every
// instrumentation point checks for.
func (c *Collector) Scope() *Scope {
	return c.ScopeFor(c.scopes.Add(1) - 1)
}

// ScopeFor issues a handle bound to an explicit tenant ID (shard
// tenant % Shards).
func (c *Collector) ScopeFor(tenant uint32) *Scope {
	return &Scope{col: c, sh: &c.shards[tenant&c.smask], tenant: tenant}
}

// Tenants reports how many scopes Scope has issued.
func (c *Collector) Tenants() uint32 { return c.scopes.Load() }

// Reset clears the collector in place: every counter and histogram
// bucket returns to zero and the event ring empties. Scopes already
// issued remain valid and keep reporting into the same shards, and the
// issued-scope count (Tenants) is preserved — so a pooled pipeline
// that built its scopes once can recycle the collector per run and
// take snapshots bit-identical to a fresh collector with the same
// scopes. Reset is not one atomic cut across writers; quiesce them
// first (the campaign workbench resets between single-threaded cell
// runs, where this holds trivially).
func (c *Collector) Reset() {
	for i := range c.shards {
		sh := &c.shards[i]
		for j := range sh.counters {
			sh.counters[j].Store(0)
		}
		for h := range sh.hist {
			for k := range sh.hist[h] {
				sh.hist[h][k].Store(0)
			}
		}
	}
	c.ring.reset()
}

// Scope is a per-tenant reporting handle. All methods are safe for
// concurrent use and safe on a nil receiver (the disabled state):
// instrumented code holds a *Scope field that is nil when telemetry is
// off, making every instrumentation point one predictable branch.
type Scope struct {
	col    *Collector
	sh     *shard
	tenant uint32
}

// Tenant reports the scope's tenant ID (0 on a nil scope).
func (s *Scope) Tenant() uint32 {
	if s == nil {
		return 0
	}
	return s.tenant
}

// Collector returns the backing collector (nil on a nil scope).
func (s *Scope) Collector() *Collector {
	if s == nil {
		return nil
	}
	return s.col
}

// Inc adds 1 to a counter.
func (s *Scope) Inc(id CounterID) {
	if s == nil {
		return
	}
	s.sh.counters[id].Add(1)
}

// Add adds n to a counter.
func (s *Scope) Add(id CounterID, n uint64) {
	if s == nil {
		return
	}
	s.sh.counters[id].Add(n)
}

// Observe records a value into a histogram.
func (s *Scope) Observe(h HistogramID, v uint64) {
	if s == nil {
		return
	}
	s.sh.hist[h][bucketFor(v)].Add(1)
}

// Event appends a trace event to the ring.
func (s *Scope) Event(kind EventKind, ccid, site, arg uint64) {
	if s == nil {
		return
	}
	s.col.ring.push(kind, s.tenant, ccid, site, arg)
}
