package telemetry

import "testing"

// TestCollectorReset pins the pooled-tenant recycling contract: Reset
// clears every counter, histogram, and the event ring in place, but
// preserves the issued-scope count — so a snapshot from a recycled
// collector (tenant slots reused across runs) is indistinguishable
// from one taken off a freshly built collector with the same number of
// Scope() calls, and retained scopes stay valid.
func TestCollectorReset(t *testing.T) {
	c := New(Config{Shards: 2, RingSize: 8})
	s0, s1 := c.Scope(), c.Scope()
	s0.Add(CtrAllocs, 5)
	s1.Inc(CtrFrees)
	s0.Observe(HistAllocSize, 128)
	s0.Event(EvPatchHit, 0x1, PackSite(1, 0x1), 9)
	s1.Event(EvGuardFault, 0x2, PackSite(2, 0x2), 3)

	c.Reset()

	snap := c.Snapshot()
	if snap.Tenants != 2 {
		t.Errorf("tenants = %d after reset, want 2 (scopes are preserved)", snap.Tenants)
	}
	if got := snap.Counter(CtrAllocs); got != 0 {
		t.Errorf("allocs = %d after reset", got)
	}
	if got := snap.Counter(CtrFrees); got != 0 {
		t.Errorf("frees = %d after reset", got)
	}
	for _, h := range snap.Histograms {
		if h.Count != 0 {
			t.Errorf("histogram %s count = %d after reset", h.Name, h.Count)
		}
	}
	if snap.EventsTotal != 0 || len(snap.Events) != 0 {
		t.Errorf("events after reset: total=%d retained=%d", snap.EventsTotal, len(snap.Events))
	}

	// Retained scopes keep working, and the ring restarts from
	// sequence zero like a fresh collector's.
	s0.Inc(CtrAllocs)
	s1.Event(EvPatchHit, 0x3, PackSite(3, 0x3), 1)
	snap = c.Snapshot()
	if got := snap.Counter(CtrAllocs); got != 1 {
		t.Errorf("allocs = %d after post-reset use, want 1", got)
	}
	if len(snap.Events) != 1 || snap.Events[0].Seq != 0 {
		t.Fatalf("post-reset events = %+v, want one event at seq 0", snap.Events)
	}
	if snap.Events[0].Tenant != s1.Tenant() {
		t.Errorf("post-reset event tenant = %d, want %d", snap.Events[0].Tenant, s1.Tenant())
	}
}

// TestCollectorResetRingWrapped pins the ring's in-place reset after a
// wrap: stale slots from before the reset must not resurface.
func TestCollectorResetRingWrapped(t *testing.T) {
	c := New(Config{Shards: 1, RingSize: 4})
	s := c.Scope()
	for i := 0; i < 9; i++ { // wraps the 4-slot ring twice
		s.Event(EvPatchHit, uint64(i), 0, 0)
	}
	c.Reset()
	s.Event(EvGuardFault, 0xFF, 0, 0)
	snap := c.Snapshot()
	if snap.EventsTotal != 1 || len(snap.Events) != 1 {
		t.Fatalf("events after reset+push: total=%d retained=%d", snap.EventsTotal, len(snap.Events))
	}
	if snap.Events[0].Kind != EvGuardFault || snap.Events[0].CCID != 0xFF {
		t.Errorf("stale slot resurfaced: %+v", snap.Events[0])
	}
}
