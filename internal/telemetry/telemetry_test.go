package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterAndHistogramNames(t *testing.T) {
	seen := map[string]bool{}
	for id := CounterID(0); id < NumCounters; id++ {
		name := id.String()
		if name == "" || strings.HasPrefix(name, "CounterID(") {
			t.Errorf("counter %d has no name", id)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	for id := HistogramID(0); id < NumHistograms; id++ {
		name := id.String()
		if name == "" || strings.HasPrefix(name, "HistogramID(") {
			t.Errorf("histogram %d has no name", id)
		}
	}
	if got := CounterID(200).String(); !strings.HasPrefix(got, "CounterID(") {
		t.Errorf("out-of-range counter name = %q", got)
	}
	if got := HistogramID(200).String(); !strings.HasPrefix(got, "HistogramID(") {
		t.Errorf("out-of-range histogram name = %q", got)
	}
	if got := EventKind(200).String(); !strings.HasPrefix(got, "EventKind(") {
		t.Errorf("out-of-range event kind name = %q", got)
	}
}

func TestPackSiteRoundTrip(t *testing.T) {
	cases := []struct {
		fn   uint8
		ccid uint64
	}{
		{1, 0}, {1, 0xDEADBEEF}, {5, 1<<56 - 1}, {0xFF, 0xFFFF_FFFF_FFFF_FFFF},
	}
	for _, c := range cases {
		site := PackSite(c.fn, c.ccid)
		if got := SiteFn(site); got != c.fn {
			t.Errorf("SiteFn(PackSite(%d, %#x)) = %d", c.fn, c.ccid, got)
		}
		if got, want := SiteCCID(site), c.ccid&(1<<56-1); got != want {
			t.Errorf("SiteCCID(PackSite(%d, %#x)) = %#x, want %#x", c.fn, c.ccid, got, want)
		}
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1 << (NumBuckets - 2), NumBuckets - 1},
		{^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Bucket bounds tile the value space: each bucket's hi+1 is the
	// next bucket's lo.
	for i := 1; i < NumBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi+1 != lo {
			t.Errorf("bucket %d hi %d does not abut bucket %d lo %d", i, hi, i+1, lo)
		}
	}
}

func TestNilScopeIsNoOp(t *testing.T) {
	var s *Scope
	// None of these may panic or do anything.
	s.Inc(CtrAllocs)
	s.Add(CtrFrees, 5)
	s.Observe(HistAllocSize, 64)
	s.Event(EvPatchHit, 1, 2, 3)
	if s.Tenant() != 0 {
		t.Error("nil scope tenant != 0")
	}
	if s.Collector() != nil {
		t.Error("nil scope collector != nil")
	}
}

func TestCountersAndSnapshot(t *testing.T) {
	c := New(Config{Shards: 4, RingSize: 64})
	s0, s1 := c.Scope(), c.Scope()
	if s0.Tenant() == s1.Tenant() {
		t.Fatal("scopes share a tenant id")
	}
	if s0.Collector() != c {
		t.Fatal("scope collector mismatch")
	}
	for i := 0; i < 10; i++ {
		s0.Inc(CtrAllocs)
	}
	s1.Add(CtrAllocs, 7)
	s1.Inc(CtrFrees)
	s0.Observe(HistAllocSize, 24)
	s0.Observe(HistAllocSize, 24)
	s0.Observe(HistAllocSize, 4096)
	s0.Event(EvPatchHit, 0xCC1D, PackSite(1, 0xCC1D), 24)

	snap := c.Snapshot()
	if got := snap.Counter(CtrAllocs); got != 17 {
		t.Errorf("allocs = %d, want 17", got)
	}
	if got := snap.Counter(CtrFrees); got != 1 {
		t.Errorf("frees = %d, want 1", got)
	}
	if snap.Tenants != 2 {
		t.Errorf("tenants = %d, want 2", snap.Tenants)
	}
	if len(snap.PerShard) != 2 {
		t.Errorf("per-shard groups = %d, want 2", len(snap.PerShard))
	}
	var hist *HistogramSnapshot
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == HistAllocSize.String() {
			hist = &snap.Histograms[i]
		}
	}
	if hist == nil || hist.Count != 3 {
		t.Fatalf("alloc_size histogram missing or wrong count: %+v", hist)
	}
	if snap.EventsTotal != 1 || len(snap.Events) != 1 {
		t.Fatalf("events: total=%d retained=%d, want 1/1", snap.EventsTotal, len(snap.Events))
	}
	e := snap.Events[0]
	if e.Kind != EvPatchHit || e.CCID != 0xCC1D || SiteCCID(e.Site) != 0xCC1D || e.Arg != 24 {
		t.Errorf("event = %+v", e)
	}
	if e.Tenant != s0.Tenant() {
		t.Errorf("event tenant = %d, want %d", e.Tenant, s0.Tenant())
	}
	if hits := snap.EventsOfKind(EvPatchHit); len(hits) != 1 {
		t.Errorf("EventsOfKind(patch-hit) = %d events", len(hits))
	}
	if none := snap.EventsOfKind(EvGuardFault); len(none) != 0 {
		t.Errorf("EventsOfKind(guard-fault) = %d events, want 0", len(none))
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	c := New(Config{Shards: 1, RingSize: 8})
	s := c.Scope()
	for i := 0; i < 20; i++ {
		s.Event(EvFault, 0, 0, uint64(i))
	}
	snap := c.Snapshot()
	if snap.EventsTotal != 20 {
		t.Fatalf("EventsTotal = %d, want 20", snap.EventsTotal)
	}
	if len(snap.Events) != 8 {
		t.Fatalf("retained %d events, want 8", len(snap.Events))
	}
	for i, e := range snap.Events {
		if want := uint64(12 + i); e.Seq != want || e.Arg != want {
			t.Errorf("event %d: seq=%d arg=%d, want %d", i, e.Seq, e.Arg, want)
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	c := New(Config{Shards: 2, RingSize: 16})
	s := c.Scope()
	s.Inc(CtrAllocs)
	s.Inc(CtrPatchHits)
	s.Observe(HistLookupCycles, 6)
	s.Event(EvPatchHit, 1, PackSite(1, 1), 16)

	var a, b bytes.Buffer
	if err := c.Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two snapshots of quiesced collector serialize differently")
	}
	var decoded Snapshot
	if err := json.Unmarshal(a.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.Counter(CtrAllocs) != 1 {
		t.Error("decoded snapshot lost counters")
	}
}

func TestSnapshotRender(t *testing.T) {
	c := New(Config{Shards: 1, RingSize: 16})
	s := c.Scope()
	s.Inc(CtrAllocs)
	s.Observe(HistAllocSize, 100)
	s.Event(EvGuardFault, 0xAA, PackSite(1, 0xBB), 0x5000)
	out := c.Snapshot().Render()
	for _, want := range []string{"telemetry:", "allocs", "histogram alloc_size", "guard-fault"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
	// Empty snapshot renders too.
	empty := New(Config{}).Snapshot().Render()
	if !strings.Contains(empty, "(none)") {
		t.Errorf("empty Render() = %q", empty)
	}
}

func TestSnapshotMerge(t *testing.T) {
	mk := func(allocs uint64, ev int) *Snapshot {
		c := New(Config{Shards: 2, RingSize: 32})
		s := c.Scope()
		s.Add(CtrAllocs, allocs)
		s.Observe(HistAllocSize, 64)
		for i := 0; i < ev; i++ {
			s.Event(EvPatchHit, uint64(i), 0, 0)
		}
		return c.Snapshot()
	}
	a, b := mk(5, 2), mk(7, 3)
	a.Merge(b)
	if got := a.Counter(CtrAllocs); got != 12 {
		t.Errorf("merged allocs = %d, want 12", got)
	}
	if a.EventsTotal != 5 || len(a.Events) != 5 {
		t.Errorf("merged events: total=%d retained=%d, want 5/5", a.EventsTotal, len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].Seq <= a.Events[i-1].Seq {
			t.Errorf("merged event seqs not monotonic: %d then %d", a.Events[i-1].Seq, a.Events[i].Seq)
		}
	}
	var hist *HistogramSnapshot
	for i := range a.Histograms {
		if a.Histograms[i].Name == HistAllocSize.String() {
			hist = &a.Histograms[i]
		}
	}
	if hist == nil || hist.Count != 2 {
		t.Fatalf("merged histogram: %+v", hist)
	}
	// Merging nil is a no-op.
	before := a.Counter(CtrAllocs)
	a.Merge(nil)
	if a.Counter(CtrAllocs) != before {
		t.Error("Merge(nil) changed the snapshot")
	}
}

func TestScopeForSharesShard(t *testing.T) {
	c := New(Config{Shards: 2, RingSize: 16})
	// Tenants 0 and 2 map to shard 0; their counts must both land and
	// both survive in the merged total.
	a, b := c.ScopeFor(0), c.ScopeFor(2)
	a.Inc(CtrFrees)
	b.Inc(CtrFrees)
	if got := c.Snapshot().Counter(CtrFrees); got != 2 {
		t.Errorf("frees = %d, want 2", got)
	}
}
