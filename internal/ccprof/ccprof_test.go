package ccprof

import (
	"strings"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
)

// hotColdProgram allocates 10 times from one context and once from
// another.
func hotColdProgram() *prog.Program {
	return prog.MustLink(&prog.Program{
		Name: "hotcold",
		Funcs: map[string]*prog.Func{
			"main": {Body: []prog.Stmt{
				prog.Assign{Dst: "i", E: prog.C(0)},
				prog.While{Cond: prog.Lt(prog.V("i"), prog.C(10)), Body: []prog.Stmt{
					prog.Call{Callee: "hot"},
					prog.Assign{Dst: "i", E: prog.Add(prog.V("i"), prog.C(1))},
				}},
				prog.Call{Callee: "cold"},
			}},
			"hot": {Body: []prog.Stmt{
				prog.Alloc{Dst: "p", Size: prog.C(100)},
				prog.FreeStmt{Ptr: prog.V("p")},
			}},
			"cold": {Body: []prog.Stmt{
				prog.Alloc{Dst: "p", Fn: heapsim.FnCalloc, Size: prog.C(8), N: prog.C(4)},
				prog.FreeStmt{Ptr: prog.V("p")},
			}},
		},
	})
}

func coderFor(t *testing.T, p *prog.Program, kind encoding.EncoderKind) *encoding.Coder {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(kind, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return coder
}

func TestProfileCountsAndOrder(t *testing.T) {
	p := hotColdProgram()
	coder := coderFor(t, p, encoding.EncoderPCCE)
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := Profile(p, backend, coder, nil, prog.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("samples = %d, want 2 contexts", len(samples))
	}
	if samples[0].Count != 10 || samples[0].Key.Fn != heapsim.FnMalloc {
		t.Errorf("hottest = %+v, want 10 mallocs", samples[0])
	}
	if samples[0].Bytes != 1000 {
		t.Errorf("hottest bytes = %d, want 1000", samples[0].Bytes)
	}
	if samples[1].Count != 1 || samples[1].Key.Fn != heapsim.FnCalloc {
		t.Errorf("cold = %+v, want 1 calloc", samples[1])
	}
	if samples[1].Bytes != 32 {
		t.Errorf("cold bytes = %d, want 32 (4*8)", samples[1].Bytes)
	}
	// PCCE decodes the contexts.
	if samples[0].Context != "main -> hot -> malloc" {
		t.Errorf("hot context = %q", samples[0].Context)
	}
	if samples[1].Context != "main -> cold -> calloc" {
		t.Errorf("cold context = %q", samples[1].Context)
	}
}

func TestProfileUnderPCCStaysOpaque(t *testing.T) {
	p := hotColdProgram()
	coder := coderFor(t, p, encoding.EncoderPCC)
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := prog.NewNativeBackend(space)
	samples, err := Profile(p, backend, coder, nil, prog.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Context != "" {
			t.Errorf("PCC sample has decoded context %q", s.Context)
		}
	}
}

func TestRender(t *testing.T) {
	p := hotColdProgram()
	coder := coderFor(t, p, encoding.EncoderPCCE)
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := prog.NewNativeBackend(space)
	samples, err := Profile(p, backend, coder, nil, prog.EngineTree)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(samples, 10)
	for _, want := range []string{"count", "main -> hot -> malloc", "calloc"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Top-1 rendering clips.
	top1 := Render(samples, 1)
	if strings.Contains(top1, "calloc") {
		t.Error("Render(1) included the cold context")
	}
}
