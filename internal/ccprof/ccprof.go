// Package ccprof is a calling-context profiler built on the encoding
// machinery — a demonstration of the paper's point that calling-context
// encoding "has been widely used in debugging, testing, anomaly
// detection, event logging, performance optimization, and profiling"
// (Section II-B), beyond its role in heap patching.
//
// The profiler wraps any heap backend, counts allocations and bytes per
// {FUN, CCID}, and — when the bound encoder supports decoding — renders
// the hottest allocation contexts symbolically. It is also what the
// evaluation harness uses to select the paper's "median frequency"
// hypothesized-vulnerable contexts for Figure 8.
package ccprof

import (
	"fmt"
	"sort"
	"strings"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
)

// Sample aggregates one allocation context's activity.
type Sample struct {
	// Key is the {FUN, CCID} identity.
	Key patch.Key
	// Count is the number of allocations.
	Count uint64
	// Bytes is the total bytes requested.
	Bytes uint64
	// Context is the decoded call path ("" if the encoder cannot
	// decode or the context is recursive).
	Context string
}

// Profiler wraps a heap backend and records allocation contexts.
type Profiler struct {
	prog.HeapBackend
	counts map[patch.Key]*Sample
}

var _ prog.HeapBackend = (*Profiler)(nil)

// New wraps a backend with context profiling.
func New(backend prog.HeapBackend) *Profiler {
	return &Profiler{
		HeapBackend: backend,
		counts:      make(map[patch.Key]*Sample),
	}
}

// Alloc implements prog.HeapBackend, recording the context.
func (p *Profiler) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	total := size
	if fn == heapsim.FnCalloc {
		total = n * size
	}
	p.record(patch.Key{Fn: fn, CCID: ccid}, total)
	return p.HeapBackend.Alloc(fn, ccid, n, size, align)
}

// Realloc implements prog.HeapBackend, recording the realloc context.
func (p *Profiler) Realloc(ccid, ptr, size uint64) (uint64, error) {
	p.record(patch.Key{Fn: heapsim.FnRealloc, CCID: ccid}, size)
	return p.HeapBackend.Realloc(ccid, ptr, size)
}

func (p *Profiler) record(k patch.Key, bytes uint64) {
	s, ok := p.counts[k]
	if !ok {
		s = &Sample{Key: k}
		p.counts[k] = s
	}
	s.Count++
	s.Bytes += bytes
}

// Samples returns the profile sorted by descending allocation count;
// ties break by CCID for determinism.
func (p *Profiler) Samples() []Sample {
	out := make([]Sample, 0, len(p.counts))
	for _, s := range p.counts {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key.CCID < out[j].Key.CCID
	})
	return out
}

// Symbolize fills each sample's Context using the coder's decoder and
// the program's call graph. Samples that cannot decode keep "".
func Symbolize(samples []Sample, p *prog.Program, coder *encoding.Coder) {
	if coder == nil || !coder.Precise() {
		return
	}
	g := p.Graph()
	root := g.NodeByName(p.Entry)
	if root == callgraph.InvalidNode {
		return
	}
	for i := range samples {
		target := g.NodeByName(samples[i].Key.Fn.String())
		if target == callgraph.InvalidNode {
			continue
		}
		path, err := coder.Decode(root, target, samples[i].Key.CCID)
		if err != nil {
			continue
		}
		parts := []string{p.Entry}
		for _, s := range path {
			parts = append(parts, g.Name(g.Edge(s).To))
		}
		samples[i].Context = strings.Join(parts, " -> ")
	}
}

// Profile runs the program once with profiling over a native backend
// factory-provided by the caller and returns the sorted, symbolized
// profile. The engine choice does not change the profile: allocation
// order and CCIDs are bit-identical across engines.
func Profile(p *prog.Program, backend prog.HeapBackend, coder *encoding.Coder, input []byte, engine prog.Engine) ([]Sample, error) {
	prof := New(backend)
	it, err := prog.NewExec(p, prog.Config{Backend: prof, Coder: coder, Engine: engine})
	if err != nil {
		return nil, err
	}
	res, err := it.Run(input)
	if err != nil {
		return nil, fmt.Errorf("ccprof: profiling run: %w", err)
	}
	if res.Crashed() {
		return nil, fmt.Errorf("ccprof: profiling run crashed: %v", res.Fault)
	}
	samples := prof.Samples()
	Symbolize(samples, p, coder)
	return samples, nil
}

// Render prints the top-n contexts as a table.
func Render(samples []Sample, n int) string {
	if n > len(samples) {
		n = len(samples)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-12s %-10s %s\n", "count", "bytes", "fn", "context (ccid)")
	for _, s := range samples[:n] {
		ctx := s.Context
		if ctx == "" {
			ctx = fmt.Sprintf("ccid %#x", s.Key.CCID)
		} else {
			ctx = fmt.Sprintf("%s (%#x)", ctx, s.Key.CCID)
		}
		fmt.Fprintf(&sb, "%-8d %-12d %-10s %s\n", s.Count, s.Bytes, s.Key.Fn, ctx)
	}
	return sb.String()
}
