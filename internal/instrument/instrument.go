// Package instrument is the Program Instrumentation Tool of Figure 1
// as a literal source-to-source transformation: given a program and a
// bound coder (plan + per-site constants), Rewrite emits a NEW program
// whose calling-context maintenance is ordinary code — a per-thread
// global V, a prologue copy t = V, an update V = f(t, c) before each
// instrumented call with a restore after it, and explicit context
// expressions at allocation sites.
//
// The rewritten program runs with NO coder attached and produces
// bit-identical allocation CCIDs to the original running under the
// interpreter's built-in encoding support (locked in by tests). This
// is exactly the paper's deployment story: instrumentation happens
// once, at build time, and the very same instrumented binary serves
// both the offline analyzer and the online defense.
package instrument

import (
	"fmt"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/prog"
)

// Names used by the rewriter in the output program. The "__cc" prefix
// keeps them out of the way of program variables (progtext identifiers
// may not start with underscores... they may, but the corpus never
// uses this prefix).
const (
	// GlobalV is the per-thread calling-context variable V.
	GlobalV = "__cc_v"
	// LocalT is the prologue copy of V (the paper's t).
	LocalT = "__cc_t"
)

// Rewrite produces the instrumented version of p for the given coder.
// The input program must be linked; the output program is re-linked
// and fully independent of the input (bodies are rebuilt).
func Rewrite(p *prog.Program, coder *encoding.Coder) (*prog.Program, error) {
	if p.Graph() == nil {
		return nil, fmt.Errorf("instrument: program %s is not linked", p.Name)
	}
	out := &prog.Program{
		Name:  p.Name,
		Entry: p.Entry,
		Funcs: make(map[string]*prog.Func, len(p.Funcs)),
	}
	rw := &rewriter{coder: coder}
	for name, f := range p.Funcs {
		body, usesT := rw.block(f.Body)
		if usesT {
			// Prologue: t = V (the paper inserts this at function entry
			// when the function contains instrumented sites).
			body = append([]prog.Stmt{
				prog.Assign{Dst: LocalT, E: prog.Global{Name: GlobalV}},
			}, body...)
		}
		out.Funcs[name] = &prog.Func{
			Name:   name,
			Params: append([]string(nil), f.Params...),
			Body:   body,
		}
	}
	if err := prog.Link(out); err != nil {
		return nil, fmt.Errorf("instrument: relinking: %w", err)
	}
	return out, nil
}

type rewriter struct {
	coder *encoding.Coder
}

// update builds the V-update expression for a site from the prologue
// copy t: 3*t + c for PCC, t + c for the additive encoders.
func (rw *rewriter) update(site callgraph.SiteID) prog.Expr {
	c := prog.C(rw.coder.SiteConst(site))
	if rw.coder.Kind() == encoding.EncoderPCC {
		return prog.Add(prog.Mul(prog.C(3), prog.V(LocalT)), c)
	}
	return prog.Add(prog.V(LocalT), c)
}

// block rewrites a statement list; usesT reports whether any emitted
// statement references the prologue copy.
func (rw *rewriter) block(body []prog.Stmt) ([]prog.Stmt, bool) {
	var out []prog.Stmt
	usesT := false
	for _, s := range body {
		switch st := s.(type) {
		case prog.Call:
			if rw.coder.Instrumented(st.Site()) {
				usesT = true
				out = append(out,
					prog.SetGlobal{Dst: GlobalV, E: rw.update(st.Site())},
					st,
					// Restore discipline: V returns to the caller's
					// context value after the call.
					prog.SetGlobal{Dst: GlobalV, E: prog.V(LocalT)},
				)
				continue
			}
			out = append(out, st)
		case prog.Alloc:
			if rw.coder.Instrumented(st.Site()) {
				usesT = true
				st.CCID = rw.update(st.Site())
			} else {
				st.CCID = prog.Global{Name: GlobalV}
			}
			out = append(out, st)
		case prog.ReallocStmt:
			if rw.coder.Instrumented(st.Site()) {
				usesT = true
				st.CCID = rw.update(st.Site())
			} else {
				st.CCID = prog.Global{Name: GlobalV}
			}
			out = append(out, st)
		case prog.If:
			then, t1 := rw.block(st.Then)
			els, t2 := rw.block(st.Else)
			st.Then, st.Else = then, els
			usesT = usesT || t1 || t2
			out = append(out, st)
		case prog.While:
			inner, t := rw.block(st.Body)
			st.Body = inner
			usesT = usesT || t
			out = append(out, st)
		default:
			out = append(out, s)
		}
	}
	return out, usesT
}
