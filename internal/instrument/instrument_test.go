package instrument

import (
	"bytes"
	"testing"

	"heaptherapy/internal/analysis"
	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/vuln"
)

func coderFor(t *testing.T, p *prog.Program, scheme encoding.Scheme, kind encoding.EncoderKind) *encoding.Coder {
	t.Helper()
	plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(kind, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return coder
}

// ccidRecorder records allocation CCIDs in order.
type ccidRecorder struct {
	prog.HeapBackend
	ccids []uint64
}

func (r *ccidRecorder) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	r.ccids = append(r.ccids, ccid)
	return r.HeapBackend.Alloc(fn, ccid, n, size, align)
}

func (r *ccidRecorder) Realloc(ccid, ptr, size uint64) (uint64, error) {
	r.ccids = append(r.ccids, ccid)
	return r.HeapBackend.Realloc(ccid, ptr, size)
}

// runRecorded executes p (with optional coder) and returns the CCID
// sequence and output.
func runRecorded(t *testing.T, p *prog.Program, coder *encoding.Coder, input []byte) ([]uint64, []byte) {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	native, err := prog.NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	rec := &ccidRecorder{HeapBackend: native}
	it, err := prog.New(p, prog.Config{Backend: rec, Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(input)
	if err != nil {
		t.Fatal(err)
	}
	return rec.ccids, res.Output
}

// TestRewriteMatchesInterpreterCCIDs is the rewriter's core contract:
// for every corpus program, scheme, and encoder, the REWRITTEN program
// run with NO coder yields the exact CCID sequence of the ORIGINAL run
// under the interpreter's built-in encoding.
func TestRewriteMatchesInterpreterCCIDs(t *testing.T) {
	for _, c := range vuln.Named() {
		for _, scheme := range encoding.AllSchemes() {
			for _, kind := range encoding.AllEncoders() {
				coder := coderFor(t, c.Program, scheme, kind)
				rewritten, err := Rewrite(c.Program, coder)
				if err != nil {
					t.Fatalf("%s %v/%v: %v", c.Name, scheme, kind, err)
				}
				for _, input := range append([][]byte{c.Attack}, c.Benign...) {
					want, wantOut := runRecorded(t, c.Program, coder, input)
					got, gotOut := runRecorded(t, rewritten, nil, input)
					if len(got) != len(want) {
						t.Fatalf("%s %v/%v: %d CCIDs vs %d", c.Name, scheme, kind, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s %v/%v: ccid[%d] = %#x, want %#x",
								c.Name, scheme, kind, i, got[i], want[i])
						}
					}
					if !bytes.Equal(gotOut, wantOut) {
						t.Fatalf("%s %v/%v: output diverged after rewriting", c.Name, scheme, kind)
					}
				}
			}
		}
	}
}

// TestRewriteIsVisibleCode: the output program literally contains the
// V-maintenance statements.
func TestRewriteIsVisibleCode(t *testing.T) {
	c := vuln.Heartbleed()
	coder := coderFor(t, c.Program, encoding.SchemeTCS, encoding.EncoderPCC)
	rewritten, err := Rewrite(c.Program, coder)
	if err != nil {
		t.Fatal(err)
	}
	setGlobals, prologues := 0, 0
	for _, f := range rewritten.Funcs {
		if len(f.Body) > 0 {
			if a, ok := f.Body[0].(prog.Assign); ok && a.Dst == LocalT {
				prologues++
			}
		}
		var walk func([]prog.Stmt)
		walk = func(body []prog.Stmt) {
			for _, s := range body {
				switch st := s.(type) {
				case prog.SetGlobal:
					if st.Dst == GlobalV {
						setGlobals++
					}
				case prog.If:
					walk(st.Then)
					walk(st.Else)
				case prog.While:
					walk(st.Body)
				}
			}
		}
		walk(f.Body)
	}
	if prologues == 0 {
		t.Error("no prologue t = V emitted")
	}
	if setGlobals == 0 {
		t.Error("no V updates emitted")
	}
}

// TestRewriteRequiresLinked rejects unlinked programs.
func TestRewriteRequiresLinked(t *testing.T) {
	p := &prog.Program{Name: "raw", Funcs: map[string]*prog.Func{"main": {}}}
	c := vuln.BC()
	coder := coderFor(t, c.Program, encoding.SchemeTCS, encoding.EncoderPCC)
	if _, err := Rewrite(p, coder); err == nil {
		t.Error("Rewrite accepted unlinked program")
	}
}

// TestRewrittenProgramFullPipeline: the instrumented program — with no
// coder anywhere — goes through offline analysis and online defense
// and still defeats the attack, patching on the CCIDs its own code
// computes. This is the paper's deployment: one instrumented binary
// for both phases.
func TestRewrittenProgramFullPipeline(t *testing.T) {
	c := vuln.Heartbleed()
	coder := coderFor(t, c.Program, encoding.SchemeIncremental, encoding.EncoderPCC)
	rewritten, err := Rewrite(c.Program, coder)
	if err != nil {
		t.Fatal(err)
	}

	// Offline: analyze the rewritten program with NO coder.
	a := &analysis.Analyzer{}
	rep, err := a.Analyze(rewritten, c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Patches.Len() == 0 {
		t.Fatalf("no patches; warnings: %v", rep.Warnings)
	}
	for _, p := range rep.Patches.Patches() {
		if p.CCID == 0 {
			t.Errorf("patch %v has zero CCID; instrumentation not in effect", p)
		}
	}

	// Online: defended run of the rewritten program, also with no coder.
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	db, err := defense.NewBackend(space, defense.Config{Patches: rep.Patches})
	if err != nil {
		t.Fatal(err)
	}
	it, err := prog.New(rewritten, prog.Config{Backend: db})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(c.Attack)
	if err != nil {
		t.Fatal(err)
	}
	if c.Success(res) {
		t.Error("attack succeeded against the defended instrumented program")
	}
	if db.Defender().Stats().PatchedAllocs == 0 {
		t.Error("defense matched no allocations; offline/online CCIDs diverged")
	}
}
