package prog

// Tier-up engine specifics beyond the shared differential sweeps in
// vm_test.go: promotion timing (mid-run, mid-corpus), profile parity
// between promoted and never-promoted machines, construction/error
// paths, closure-cache sharing, and the steady-state zero-allocation
// pin for the compiled tier.

import (
	"bytes"
	"sync"
	"testing"

	"heaptherapy/internal/mem"
)

// hotProgram calls one helper repeatedly from a loop, so with a small
// threshold the helper (and main) promote in the middle of a single
// run while the loop is executing.
func hotProgram(iters uint64) *Program {
	return MustLink(&Program{
		Name: "hot",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "acc", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(iters)}, Body: []Stmt{
					Call{Dst: "acc", Callee: "work", Args: []Expr{V("acc"), V("i")}},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				OutputVar{Src: "acc"},
				Return{E: V("acc")},
			}},
			"work": {Params: []string{"a", "x"}, Body: []Stmt{
				Alloc{Dst: "p", Size: C(32)},
				Store{Base: V("p"), Src: Bin{Op: OpXor, A: V("a"), B: Bin{Op: OpMul, A: V("x"), B: C(31)}}},
				Load{Dst: "y", Base: V("p"), N: C(8)},
				FreeStmt{Ptr: V("p")},
				Return{E: V("y")},
			}},
		},
	})
}

// TestMachinePromotionMidRun: a function promoted in the middle of a
// single run must leave every observable — result, statistics, and
// the per-site allocation profile — identical to a machine that never
// promotes and to the tree-walker.
func TestMachinePromotionMidRun(t *testing.T) {
	p := hotProgram(64)
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}

	it, err := New(p, Config{Backend: newNative(t)})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := NewMachine(c, Config{Backend: newNative(t), TierUp: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Threshold beyond any call count in this run: stays cold forever.
	cold, err := NewMachine(c, Config{Backend: newNative(t), TierUp: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}

	tr, terr := it.Run(nil)
	hr, herr := hot.Run(nil)
	cr, cerr := cold.Run(nil)
	assertSameRun(t, "hot-vs-tree", tr, hr, terr, herr)
	assertSameRun(t, "cold-vs-tree", tr, cr, terr, cerr)

	if hot.Promotions() == 0 {
		t.Error("hot machine reported no promotions over a 64-iteration loop")
	}
	if cold.Promotions() != 0 {
		t.Errorf("cold machine promoted %d functions below threshold", cold.Promotions())
	}

	hp, cp := hot.SiteProfile(), cold.SiteProfile()
	if len(hp) != len(cp) {
		t.Fatalf("site profile lengths differ: hot %d cold %d", len(hp), len(cp))
	}
	for i := range hp {
		if hp[i] != cp[i] {
			t.Errorf("site %d profile diverges: hot %+v cold %+v", i, hp[i], cp[i])
		}
	}
}

// TestMachineClosureCacheShared: machines sharing one ClosureCache
// must produce identical runs, and a machine entering after another
// already promoted (so it starts directly on cached closure code)
// must be indistinguishable.
func TestMachineClosureCacheShared(t *testing.T) {
	p := hotProgram(32)
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewClosureCache(c)

	first, err := NewMachine(c, Config{Backend: newNative(t), TierUp: 1, Closures: cache})
	if err != nil {
		t.Fatal(err)
	}
	want, err := first.Run(nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			backend := newNativeNoT()
			if backend == nil {
				errs[g] = errStr("backend construction failed")
				return
			}
			m, err := NewMachine(c, Config{Backend: backend, TierUp: 1, Closures: cache})
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < 20; i++ {
				res, err := m.Run(nil)
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(res.Output, want.Output) || res.Cycles != want.Cycles {
					errs[g] = errStr("shared-cache machine diverged from reference run")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestNewMachineValidation covers the construction error paths: nil
// program, missing backend, coder mismatch, and a closure cache built
// for a different Compiled.
func TestNewMachineValidation(t *testing.T) {
	p := hotProgram(4)
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(nil, Config{Backend: newNative(t)}); err == nil {
		t.Error("NewMachine(nil) succeeded")
	}
	if _, err := NewMachine(c, Config{}); err == nil {
		t.Error("NewMachine without backend succeeded")
	}
	other, err := Compile(hotProgram(5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachine(c, Config{Backend: newNative(t), Closures: NewClosureCache(other)}); err == nil {
		t.Error("NewMachine with a cache for a different Compiled succeeded")
	}
	m, err := NewMachine(c, Config{Backend: newNative(t)})
	if err != nil {
		t.Fatal(err)
	}
	if m.Threshold() != DefaultTierUp {
		t.Errorf("default threshold = %d, want DefaultTierUp (%d)", m.Threshold(), DefaultTierUp)
	}
}

// TestMachineRunThreadsDuringTierUp: spawning interpreter threads
// whose functions tier up mid-schedule must match the tree engine
// exactly — including when the thread count exceeds the threshold so
// later threads start on closure code the earlier ones compiled.
func TestMachineRunThreadsDuringTierUp(t *testing.T) {
	p := hotProgram(8)
	inputs := [][]byte{nil, nil, nil, nil, nil, nil}

	run := func(engine Engine) ([]*Result, uint64) {
		backend := newNative(t)
		res, err := RunThreads(p, Config{Backend: backend, Engine: engine, TierUp: 2}, inputs, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res, backend.Cycles()
	}
	tres, tcyc := run(EngineTree)
	mres, mcyc := run(EngineCompiled)
	for i := range tres {
		assertSameRun(t, "tierup-thread", tres[i], mres[i], nil, nil)
	}
	if tcyc != mcyc {
		t.Errorf("shared backend cycles: tree %d compiled %d", tcyc, mcyc)
	}
}

// TestMachineSteadyStateZeroAlloc extends the VM's zero-allocation
// pin to the compiled tier: once every function is promoted and the
// buffer pools are warm, RunReuse on closure code allocates nothing.
func TestMachineSteadyStateZeroAlloc(t *testing.T) {
	p := pinProgram(64)
	backend := newNative(t)
	input := pinSetup(t, backend)

	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(c, Config{Backend: backend, TierUp: 1})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	// Warm the pools and drive every function past the threshold.
	for i := 0; i < 3; i++ {
		if err := m.RunReuse(&res, input); err != nil {
			t.Fatal(err)
		}
		if res.Crashed() {
			t.Fatalf("pin run crashed: %v", res.Fault)
		}
	}
	if m.Promotions() == 0 {
		t.Fatal("pin workload never promoted; allocation pin would measure the cold tier")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.RunReuse(&res, input); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state compiled RunReuse allocates %.1f objects/run, want 0", allocs)
	}
}

// newNativeNoT is newNative for goroutines that must not call t.Fatal.
func newNativeNoT() HeapBackend {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		return nil
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		return nil
	}
	return backend
}
