package prog

import (
	"strings"
	"testing"
)

// Link error paths beyond the basics in interp_test.go: name-map
// consistency, unresolved callees in nested blocks and non-entry
// functions, and the MustLink panic contract.

func TestLinkRejectsMismatchedFuncName(t *testing.T) {
	p := &Program{
		Name: "dup",
		Funcs: map[string]*Func{
			"main":   {Body: []Stmt{Nop{}}},
			"helper": {Name: "other", Body: []Stmt{Nop{}}},
		},
	}
	err := Link(p)
	if err == nil {
		t.Fatal("Link accepted a function whose map key disagrees with its Name")
	}
	want := `prog dup: function map key "helper" != Func.Name "other"`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

func TestLinkFillsEmptyFuncNames(t *testing.T) {
	p := &Program{
		Name: "fill",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "helper"}}},
			// Name left empty: Link adopts the map key.
			"helper": {Body: []Stmt{Nop{}}},
		},
	}
	if err := Link(p); err != nil {
		t.Fatal(err)
	}
	if p.Funcs["helper"].Name != "helper" {
		t.Errorf("helper Name = %q, want filled from map key", p.Funcs["helper"].Name)
	}
}

func TestLinkRejectsUndefinedCalleeInHelper(t *testing.T) {
	p := &Program{
		Name: "deep",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "helper"}}},
			"helper": {Body: []Stmt{
				If{Cond: C(1), Then: []Stmt{
					While{Cond: C(0), Body: []Stmt{
						Call{Callee: "phantom"},
					}},
				}},
			}},
		},
	}
	err := Link(p)
	if err == nil {
		t.Fatal("Link accepted an undefined callee nested in if/while")
	}
	want := `prog deep: helper calls undefined function "phantom"`
	if err.Error() != want {
		t.Errorf("error = %q, want %q", err, want)
	}
}

func TestLinkRejectsUndefinedCalleeInElse(t *testing.T) {
	p := &Program{
		Name: "else",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				If{Cond: C(0), Then: []Stmt{Nop{}}, Else: []Stmt{Call{Callee: "ghost"}}},
			}},
		},
	}
	err := Link(p)
	if err == nil || !strings.Contains(err.Error(), `calls undefined function "ghost"`) {
		t.Errorf("Link err = %v, want undefined-function error from else branch", err)
	}
}

func TestLinkRejectsMissingNamedEntry(t *testing.T) {
	p := &Program{
		Name:  "noentry",
		Entry: "serve",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{Nop{}}},
		},
	}
	err := Link(p)
	want := `prog noentry: entry function "serve" not defined`
	if err == nil || err.Error() != want {
		t.Errorf("error = %v, want %q", err, want)
	}
}

func TestMustLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLink did not panic on a broken program")
		}
	}()
	MustLink(&Program{Name: "broken", Funcs: map[string]*Func{
		"main": {Body: []Stmt{Call{Callee: "nowhere"}}},
	}})
}
