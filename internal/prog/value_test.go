package prog

import (
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	f := func(x uint64) bool { return Scalar(x).Uint() == x }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUintShortValue(t *testing.T) {
	v := Value{Bytes: []byte{0x12, 0x34}}
	if got := v.Uint(); got != 0x3412 {
		t.Errorf("Uint = %#x, want 0x3412", got)
	}
	if Scalar(5).Len() != 8 {
		t.Error("Scalar length != 8")
	}
	var empty Value
	if empty.Uint() != 0 {
		t.Error("empty value Uint != 0")
	}
}

func TestFullyValid(t *testing.T) {
	v := Scalar(1)
	if !v.FullyValid() {
		t.Error("Scalar not fully valid")
	}
	if v.FirstInvalid() != -1 {
		t.Error("Scalar has invalid byte")
	}
	v.Valid = []byte{0xFF, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	if v.FullyValid() {
		t.Error("value with a cleared V-bit reported fully valid")
	}
	if got := v.FirstInvalid(); got != 1 {
		t.Errorf("FirstInvalid = %d, want 1", got)
	}
}

func TestInvalidOrigin(t *testing.T) {
	v := invalidScalar(42, 7)
	if v.Uint() != 42 {
		t.Error("invalidScalar lost the data bits")
	}
	if v.FullyValid() {
		t.Error("invalidScalar is valid")
	}
	if got := v.InvalidOrigin(); got != 7 {
		t.Errorf("InvalidOrigin = %d, want 7", got)
	}
	if Scalar(1).InvalidOrigin() != 0 {
		t.Error("valid value has nonzero origin")
	}
}

func TestCombineScalarPropagation(t *testing.T) {
	a := Scalar(10)
	b := invalidScalar(20, 3)
	r := combineScalar(30, a, b)
	if r.Uint() != 30 {
		t.Errorf("result = %d, want 30", r.Uint())
	}
	if r.FullyValid() {
		t.Error("valid OP invalid produced valid result")
	}
	if r.InvalidOrigin() != 3 {
		t.Errorf("origin = %d, want 3 (from b)", r.InvalidOrigin())
	}

	r2 := combineScalar(1, b, a)
	if r2.InvalidOrigin() != 3 {
		t.Errorf("origin = %d, want 3 (from a-position operand)", r2.InvalidOrigin())
	}

	r3 := combineScalar(2, Scalar(1), Scalar(2))
	if !r3.FullyValid() {
		t.Error("valid OP valid produced invalid result")
	}
}

func TestSlice(t *testing.T) {
	v := Value{
		Bytes:  []byte{1, 2, 3, 4},
		Valid:  []byte{0xFF, 0x00, 0xFF, 0xFF},
		Origin: []uint32{0, 9, 0, 0},
	}
	s := v.Slice(1, 2)
	if len(s.Bytes) != 2 || s.Bytes[0] != 2 || s.Bytes[1] != 3 {
		t.Errorf("Slice bytes = %v, want [2 3]", s.Bytes)
	}
	if s.FullyValid() {
		t.Error("slice lost invalid shadow")
	}
	if s.InvalidOrigin() != 9 {
		t.Errorf("slice origin = %d, want 9", s.InvalidOrigin())
	}
	// Mutating the slice must not affect the original.
	s.Bytes[0] = 99
	if v.Bytes[1] == 99 {
		t.Error("Slice aliases the original")
	}

	if got := v.Slice(10, 2); got.Len() != 0 {
		t.Error("out-of-range slice is non-empty")
	}
	if got := v.Slice(2, 100); got.Len() != 2 {
		t.Errorf("over-long slice Len = %d, want 2", got.Len())
	}
}

func TestClone(t *testing.T) {
	v := invalidScalar(5, 2)
	c := v.Clone()
	c.Bytes[0] = 0xAA
	c.Valid[0] = 0xFF
	c.Origin[0] = 1
	if v.Bytes[0] == 0xAA || v.Valid[0] == 0xFF || v.Origin[0] == 1 {
		t.Error("Clone aliases the original")
	}
}

func TestScalarShadowWindow(t *testing.T) {
	// Only the first 8 bytes matter for scalar shadow.
	v := Value{
		Bytes: make([]byte, 16),
		Valid: append(mask8(0xFF), 0x00), // byte 8 invalid
	}
	valid, _ := v.scalarShadow()
	if !valid {
		t.Error("scalar shadow should consider only first 8 bytes... which are valid")
	}
}

func mask8(b byte) []byte {
	out := make([]byte, 8)
	for i := range out {
		out[i] = b
	}
	return out
}
