package prog

// Benchmarks and allocation pins for the encoded-call hot path: a
// program whose inner loop calls through Incremental-instrumented
// sites, so every iteration exercises the precompiled SiteUpdate
// table, the V save/restore discipline, and the allocator round trip.

import (
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
)

// encodedCallProgram loops iters times calling two allocating helpers.
// main's two call edges both reach malloc, so main is a true branching
// node and the Incremental plan instruments exactly those sites.
func encodedCallProgram(iters uint64) *Program {
	return MustLink(&Program{
		Name: "encoded-call",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "acc", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(iters)}, Body: []Stmt{
					Call{Dst: "x", Callee: "left"},
					Call{Dst: "y", Callee: "right"},
					Assign{Dst: "acc", E: Bin{Op: OpAdd, A: V("acc"), B: Bin{Op: OpXor, A: V("x"), B: V("y")}}},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				Return{E: V("acc")},
			}},
			"left": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(32)},
				FreeStmt{Ptr: V("p")},
				Return{E: C(1)},
			}},
			"right": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(48)},
				FreeStmt{Ptr: V("p")},
				Return{E: C(2)},
			}},
		},
	})
}

// encodedCallDenseProgram is the dispatch-bound variant: the helpers
// statically reach malloc (so the plan instruments every call site and
// each call pays a SiteUpdate), but the allocation hides behind a
// branch the loop counter never satisfies, so the allocator is cold
// and the measured time is dominated by dispatch, encoded-call
// updates, and arithmetic — the part of the pipeline the engines
// actually differ on.
func encodedCallDenseProgram(iters uint64) *Program {
	never := Bin{Op: OpGt, A: V("x"), B: C(1 << 40)}
	body := func(ret Expr) []Stmt {
		return []Stmt{
			If{Cond: never, Then: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				FreeStmt{Ptr: V("p")},
			}},
			Return{E: ret},
		}
	}
	return MustLink(&Program{
		Name: "encoded-call-dense",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "acc", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(iters)}, Body: []Stmt{
					Call{Dst: "acc", Callee: "mixa", Args: []Expr{V("acc"), V("i")}},
					Call{Dst: "acc", Callee: "mixb", Args: []Expr{V("acc"), V("i")}},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				Return{E: V("acc")},
			}},
			"mixa": {Params: []string{"a", "x"}, Body: body(
				Bin{Op: OpXor, A: Bin{Op: OpMul, A: V("a"), B: C(33)}, B: V("x")})},
			"mixb": {Params: []string{"a", "x"}, Body: body(
				Bin{Op: OpMul, A: Bin{Op: OpAdd, A: V("a"), B: V("x")}, B: C(17)})},
		},
	})
}

func encodedCallCoder(tb testing.TB, p *Program) *encoding.Coder {
	tb.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		tb.Fatal(err)
	}
	if plan.NumSites() == 0 {
		tb.Fatal("encoded-call program has no instrumented sites; benchmark would not exercise updates")
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		tb.Fatal(err)
	}
	return coder
}

func encodedCallBackend(tb testing.TB) *NativeBackend {
	tb.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		tb.Fatal(err)
	}
	return backend
}

// BenchmarkEncodedCall measures a full instrumented run (256 loop
// iterations, two encoded calls plus an alloc/free pair each) on both
// engines. The per-call encoding update itself is a precompiled
// SiteUpdate application — branch, multiply, add — with no allocation.
func BenchmarkEncodedCall(b *testing.B) {
	const iters = 256
	b.Run("tree", func(b *testing.B) {
		p := encodedCallProgram(iters)
		coder := encodedCallCoder(b, p)
		it, err := New(p, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := it.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vm", func(b *testing.B) {
		p := encodedCallProgram(iters)
		coder := encodedCallCoder(b, p)
		c, err := Compile(p, coder)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := NewVM(c, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vm.RunReuse(&res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		p := encodedCallProgram(iters)
		coder := encodedCallCoder(b, p)
		c, err := Compile(p, coder)
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewMachine(c, Config{Backend: encodedCallBackend(b), Coder: coder, TierUp: 1})
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		// Promote every function before the timer starts so the loop
		// measures the steady-state closure tier, not compilation.
		if err := m.RunReuse(&res, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.RunReuse(&res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEncodedCallDense measures the dispatch-bound encoded-call
// path (see encodedCallDenseProgram): every call site pays a
// SiteUpdate, the allocator stays cold, and the spread between the
// engines is pure interpretation overhead. This is the workload the
// tier-up engine is built for.
func BenchmarkEncodedCallDense(b *testing.B) {
	const iters = 512
	p := encodedCallDenseProgram(iters)
	b.Run("tree", func(b *testing.B) {
		coder := encodedCallCoder(b, p)
		it, err := New(p, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := it.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vm", func(b *testing.B) {
		coder := encodedCallCoder(b, p)
		c, err := Compile(p, coder)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := NewVM(c, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vm.RunReuse(&res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		coder := encodedCallCoder(b, p)
		c, err := Compile(p, coder)
		if err != nil {
			b.Fatal(err)
		}
		m, err := NewMachine(c, Config{Backend: encodedCallBackend(b), Coder: coder, TierUp: 1})
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		if err := m.RunReuse(&res, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := m.RunReuse(&res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEncodedCallTreeAllocsFlat pins the tree-walker's hot path: once
// frames, slots, and value buffers are warm, a run's allocations must
// not grow with the number of encoded calls executed — i.e. the
// per-call path (site update, frame recycle, alloc/free) is
// allocation-free, and only the O(1) per-run bookkeeping (Result,
// returned-value clone) remains.
func TestEncodedCallTreeAllocsFlat(t *testing.T) {
	measure := func(iters uint64) float64 {
		p := encodedCallProgram(iters)
		it, err := New(p, Config{Backend: encodedCallBackend(t), Coder: encodedCallCoder(t, p)})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the slot frames and value buffers.
		if _, err := it.Run(nil); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := it.Run(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(8), measure(4096)
	if big > small {
		t.Errorf("tree allocations grow with call count: %.1f allocs at 8 iters, %.1f at 4096", small, big)
	}
}

// TestEncodedCallVMZeroAlloc pins the VM's encoded-call path at zero:
// steady-state RunReuse of the instrumented program must not allocate
// at all.
func TestEncodedCallVMZeroAlloc(t *testing.T) {
	p := encodedCallProgram(512)
	coder := encodedCallCoder(t, p)
	c, err := Compile(p, coder)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: encodedCallBackend(t), Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := vm.RunReuse(&res, nil); err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("warmup crashed: %v", res.Fault)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := vm.RunReuse(&res, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state encoded RunReuse allocates %.1f objects/run, want 0", allocs)
	}
}

// TestEncodedCallMachineZeroAlloc extends the zero-allocation pin to
// the tier-up engine: once every function is promoted, the compiled
// tier's encoded-call path — baked SiteUpdate arithmetic, closure
// dispatch, frame recycle, alloc/free — must not allocate either.
func TestEncodedCallMachineZeroAlloc(t *testing.T) {
	p := encodedCallProgram(512)
	coder := encodedCallCoder(t, p)
	c, err := Compile(p, coder)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(c, Config{Backend: encodedCallBackend(t), Coder: coder, TierUp: 1})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := m.RunReuse(&res, nil); err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("warmup crashed: %v", res.Fault)
	}
	if m.Promotions() == 0 {
		t.Fatal("warmup never promoted; pin would measure the cold tier")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := m.RunReuse(&res, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state compiled encoded RunReuse allocates %.1f objects/run, want 0", allocs)
	}
}
