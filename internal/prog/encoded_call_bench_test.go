package prog

// Benchmarks and allocation pins for the encoded-call hot path: a
// program whose inner loop calls through Incremental-instrumented
// sites, so every iteration exercises the precompiled SiteUpdate
// table, the V save/restore discipline, and the allocator round trip.

import (
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
)

// encodedCallProgram loops iters times calling two allocating helpers.
// main's two call edges both reach malloc, so main is a true branching
// node and the Incremental plan instruments exactly those sites.
func encodedCallProgram(iters uint64) *Program {
	return MustLink(&Program{
		Name: "encoded-call",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "acc", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(iters)}, Body: []Stmt{
					Call{Dst: "x", Callee: "left"},
					Call{Dst: "y", Callee: "right"},
					Assign{Dst: "acc", E: Bin{Op: OpAdd, A: V("acc"), B: Bin{Op: OpXor, A: V("x"), B: V("y")}}},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				Return{E: V("acc")},
			}},
			"left": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(32)},
				FreeStmt{Ptr: V("p")},
				Return{E: C(1)},
			}},
			"right": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(48)},
				FreeStmt{Ptr: V("p")},
				Return{E: C(2)},
			}},
		},
	})
}

func encodedCallCoder(tb testing.TB, p *Program) *encoding.Coder {
	tb.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		tb.Fatal(err)
	}
	if plan.NumSites() == 0 {
		tb.Fatal("encoded-call program has no instrumented sites; benchmark would not exercise updates")
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		tb.Fatal(err)
	}
	return coder
}

func encodedCallBackend(tb testing.TB) *NativeBackend {
	tb.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		tb.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		tb.Fatal(err)
	}
	return backend
}

// BenchmarkEncodedCall measures a full instrumented run (256 loop
// iterations, two encoded calls plus an alloc/free pair each) on both
// engines. The per-call encoding update itself is a precompiled
// SiteUpdate application — branch, multiply, add — with no allocation.
func BenchmarkEncodedCall(b *testing.B) {
	const iters = 256
	b.Run("tree", func(b *testing.B) {
		p := encodedCallProgram(iters)
		coder := encodedCallCoder(b, p)
		it, err := New(p, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := it.Run(nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vm", func(b *testing.B) {
		p := encodedCallProgram(iters)
		coder := encodedCallCoder(b, p)
		c, err := Compile(p, coder)
		if err != nil {
			b.Fatal(err)
		}
		vm, err := NewVM(c, Config{Backend: encodedCallBackend(b), Coder: coder})
		if err != nil {
			b.Fatal(err)
		}
		var res Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := vm.RunReuse(&res, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestEncodedCallTreeAllocsFlat pins the tree-walker's hot path: once
// frames, slots, and value buffers are warm, a run's allocations must
// not grow with the number of encoded calls executed — i.e. the
// per-call path (site update, frame recycle, alloc/free) is
// allocation-free, and only the O(1) per-run bookkeeping (Result,
// returned-value clone) remains.
func TestEncodedCallTreeAllocsFlat(t *testing.T) {
	measure := func(iters uint64) float64 {
		p := encodedCallProgram(iters)
		it, err := New(p, Config{Backend: encodedCallBackend(t), Coder: encodedCallCoder(t, p)})
		if err != nil {
			t.Fatal(err)
		}
		// Warm the slot frames and value buffers.
		if _, err := it.Run(nil); err != nil {
			t.Fatal(err)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := it.Run(nil); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, big := measure(8), measure(4096)
	if big > small {
		t.Errorf("tree allocations grow with call count: %.1f allocs at 8 iters, %.1f at 4096", small, big)
	}
}

// TestEncodedCallVMZeroAlloc pins the VM's encoded-call path at zero:
// steady-state RunReuse of the instrumented program must not allocate
// at all.
func TestEncodedCallVMZeroAlloc(t *testing.T) {
	p := encodedCallProgram(512)
	coder := encodedCallCoder(t, p)
	c, err := Compile(p, coder)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: encodedCallBackend(t), Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := vm.RunReuse(&res, nil); err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("warmup crashed: %v", res.Fault)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := vm.RunReuse(&res, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state encoded RunReuse allocates %.1f objects/run, want 0", allocs)
	}
}
