package prog

import (
	"fmt"
	"sort"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/heapsim"
)

// Link finalizes a program: it validates call targets, derives the call
// graph (one edge per static Call/Alloc/ReallocStmt site, exactly what
// the paper's LLVM pass sees), and assigns SiteIDs to the statements.
// Programs must be linked before interpretation or planning.
func Link(p *Program) error {
	if p.Entry == "" {
		p.Entry = "main"
	}
	if _, ok := p.Funcs[p.Entry]; !ok {
		return fmt.Errorf("prog %s: entry function %q not defined", p.Name, p.Entry)
	}
	for name, f := range p.Funcs {
		if f.Name == "" {
			f.Name = name
		}
		if f.Name != name {
			return fmt.Errorf("prog %s: function map key %q != Func.Name %q", p.Name, name, f.Name)
		}
	}

	b := callgraph.NewBuilder()
	// Entry first so it is node 0 and a root; remaining functions in
	// sorted order for determinism.
	b.AddFunc(p.Entry)
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.AddFunc(name)
	}

	usedTargets := make(map[string]bool)
	for _, name := range names {
		f := p.Funcs[name]
		var err error
		f.Body, err = linkBody(p, b, name, f.Body, usedTargets)
		if err != nil {
			return err
		}
	}

	p.graph = b.Build()
	p.targets = nil
	targetNames := make([]string, 0, len(usedTargets))
	for t := range usedTargets {
		targetNames = append(targetNames, t)
	}
	sort.Strings(targetNames)
	for _, t := range targetNames {
		p.targets = append(p.targets, p.graph.NodeByName(t))
	}
	return nil
}

// linkBody rewrites a statement list, assigning call sites; it recurses
// into If/While blocks.
func linkBody(p *Program, b *callgraph.Builder, caller string, body []Stmt, used map[string]bool) ([]Stmt, error) {
	out := make([]Stmt, len(body))
	for i, s := range body {
		switch st := s.(type) {
		case Call:
			if _, ok := p.Funcs[st.Callee]; !ok {
				return nil, fmt.Errorf("prog %s: %s calls undefined function %q", p.Name, caller, st.Callee)
			}
			st.site = b.AddCall(caller, st.Callee)
			out[i] = st
		case Alloc:
			if st.Fn == 0 {
				st.Fn = heapsim.FnMalloc
			}
			target := st.Fn.String()
			st.site = b.AddCall(caller, target)
			used[target] = true
			out[i] = st
		case ReallocStmt:
			target := heapsim.FnRealloc.String()
			st.site = b.AddCall(caller, target)
			used[target] = true
			out[i] = st
		case If:
			then, err := linkBody(p, b, caller, st.Then, used)
			if err != nil {
				return nil, err
			}
			els, err := linkBody(p, b, caller, st.Else, used)
			if err != nil {
				return nil, err
			}
			st.Then, st.Else = then, els
			out[i] = st
		case While:
			inner, err := linkBody(p, b, caller, st.Body, used)
			if err != nil {
				return nil, err
			}
			st.Body = inner
			out[i] = st
		default:
			out[i] = s
		}
	}
	return out, nil
}

// MustLink links p and panics on error; for statically-known test and
// corpus programs whose well-formedness is a programming invariant.
func MustLink(p *Program) *Program {
	if err := Link(p); err != nil {
		panic(err)
	}
	return p
}

// Site returns the call-graph site the linker assigned to this call.
func (c Call) Site() callgraph.SiteID { return c.site }

// Site returns the call-graph site the linker assigned to this
// allocation.
func (a Alloc) Site() callgraph.SiteID { return a.site }

// Site returns the call-graph site the linker assigned to this
// realloc.
func (r ReallocStmt) Site() callgraph.SiteID { return r.site }
