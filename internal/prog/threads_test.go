package prog

import (
	"runtime"
	"testing"
	"time"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
)

// serverProgram handles one request: allocate, touch, compute, free,
// echo a request-derived value.
func serverProgram() *Program {
	return MustLink(&Program{
		Name: "mt-server",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Call{Callee: "handle"},
			}},
			"handle": {Body: []Stmt{
				ReadInput{Dst: "id", N: C(1)},
				Alloc{Dst: "conn", Size: C(512)},
				Alloc{Dst: "hdr", Size: C(128)},
				Store{Base: V("conn"), Src: V("id"), N: C(8)},
				Assign{Dst: "i", E: C(0)},
				While{Cond: Lt(V("i"), C(50)), Body: []Stmt{
					Assign{Dst: "x", E: Add(V("i"), V("id"))},
					Assign{Dst: "i", E: Add(V("i"), C(1))},
				}},
				Load{Dst: "back", Base: V("conn"), N: C(8)},
				FreeStmt{Ptr: V("hdr")},
				FreeStmt{Ptr: V("conn")},
				OutputVar{Src: "back"},
			}},
		},
	})
}

func TestRunThreadsSharedHeap(t *testing.T) {
	p := serverProgram()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	results, err := RunThreads(p, Config{Backend: backend}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Crashed() {
			t.Fatalf("thread %d crashed: %v", i, res.Fault)
		}
		// Each thread's data survived the shared-heap interleaving: the
		// value written into its connection buffer reads back intact.
		if got := (Value{Bytes: res.Output}).Uint(); got != uint64(i+1) {
			t.Errorf("thread %d echoed %d, want %d (cross-thread corruption?)", i, got, i+1)
		}
	}
	// The shared heap is consistent and leak-free.
	if err := backend.Heap().CheckIntegrity(); err != nil {
		t.Fatalf("shared heap integrity: %v", err)
	}
	if backend.Heap().LiveCount() != 0 {
		t.Errorf("leaked allocations: %d", backend.Heap().LiveCount())
	}
}

func TestRunThreadsDeterministic(t *testing.T) {
	p := serverProgram()
	run := func() []uint64 {
		space, _ := mem.NewSpace(mem.Config{})
		backend, _ := NewNativeBackend(space)
		results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{9}, {8}, {7}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(results))
		for i, r := range results {
			out[i] = r.Steps
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic scheduling: steps %v vs %v", a, b)
		}
	}
}

// TestRunThreadsThreadLocalCCID: threads executing the same path must
// observe the same allocation-time CCID (V is thread-local state, not
// global), so one patch covers that context across all threads.
func TestRunThreadsThreadLocalCCID(t *testing.T) {
	p := serverProgram()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	space, _ := mem.NewSpace(mem.Config{})
	native, _ := NewNativeBackend(space)
	rb := &recordingBackend{HeapBackend: native}
	_, err = RunThreads(p, Config{Backend: rb, Coder: coder}, [][]byte{{1}, {2}, {3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 threads x 2 allocation sites; per site, all threads must agree.
	if len(rb.ccids) != 6 {
		t.Fatalf("recorded %d CCIDs, want 6", len(rb.ccids))
	}
	distinct := make(map[uint64]int)
	for _, c := range rb.ccids {
		distinct[c]++
	}
	if len(distinct) != 2 {
		t.Fatalf("distinct CCIDs = %d, want 2 (one per allocation site)", len(distinct))
	}
	for c, n := range distinct {
		if n != 3 {
			t.Errorf("CCID %#x seen %d times, want 3 (once per thread)", c, n)
		}
	}
}

func TestRunThreadsValidation(t *testing.T) {
	p := serverProgram()
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	if _, err := RunThreads(p, Config{Backend: backend}, nil, 4); err == nil {
		t.Error("RunThreads with no inputs succeeded")
	}
}

func TestRunThreadsSingleThread(t *testing.T) {
	// One thread must behave exactly like a plain Run.
	p := serverProgram()
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	space2, _ := mem.NewSpace(mem.Config{})
	backend2, _ := NewNativeBackend(space2)
	it, err := New(p, Config{Backend: backend2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := it.Run([]byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if string(results[0].Output) != string(plain.Output) || results[0].Steps != plain.Steps {
		t.Error("single-thread RunThreads differs from plain Run")
	}
}

// TestRunThreadsQuantumLargerThanProgram: with a quantum bigger than
// any thread's statement count, no thread ever yields — each runs to
// completion on its first grant — and the results must still match a
// per-thread plain Run over an equivalently interleaved heap. With
// nothing actually interleaving, sequential execution IS that heap
// order, so outputs and step counts match thread by thread.
func TestRunThreadsQuantumLargerThanProgram(t *testing.T) {
	p := serverProgram()
	inputs := [][]byte{{3}, {7}, {11}}

	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	results, err := RunThreads(p, Config{Backend: backend}, inputs, 1<<40)
	if err != nil {
		t.Fatal(err)
	}

	space2, _ := mem.NewSpace(mem.Config{})
	backend2, _ := NewNativeBackend(space2)
	for i, in := range inputs {
		it, err := New(p, Config{Backend: backend2})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := it.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		if string(results[i].Output) != string(plain.Output) {
			t.Errorf("thread %d output %x, sequential run %x", i, results[i].Output, plain.Output)
		}
		if results[i].Steps != plain.Steps {
			t.Errorf("thread %d steps %d, sequential run %d", i, results[i].Steps, plain.Steps)
		}
	}
}

// countGoroutines samples runtime.NumGoroutine with settling retries:
// exiting thread goroutines need a beat to be torn down, so a raw
// before/after comparison is racy. deadline-bounded, returns the first
// sample <= want (or the last sample).
func countGoroutines(want int) int {
	deadline := time.Now().Add(2 * time.Second)
	n := runtime.NumGoroutine()
	for n > want && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestRunThreadsNoGoroutineLeak: every RunThreads invocation — clean
// completion, single thread, huge quantum, and a mid-run crash with
// survivors — must leave the goroutine count where it started. A
// leaked thread goroutine would sit blocked on its grant channel
// forever and show up here.
func TestRunThreadsNoGoroutineLeak(t *testing.T) {
	crashy := MustLink(&Program{
		Name: "crashy-leak",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "bad", N: C(1)},
				Alloc{Dst: "p", Size: C(16)},
				If{Cond: Eq(And(V("bad"), C(0xFF)), C(1)), Then: []Stmt{
					StoreBytes{Base: V("p"), Off: C(1 << 33), Data: []byte{1}},
				}},
				FreeStmt{Ptr: V("p")},
				OutputVar{Src: "bad"},
			}},
		},
	})
	before := runtime.NumGoroutine()

	runs := []struct {
		name    string
		p       *Program
		inputs  [][]byte
		quantum uint64
	}{
		{"clean", serverProgram(), [][]byte{{1}, {2}, {3}, {4}}, 8},
		{"single", serverProgram(), [][]byte{{9}}, 4},
		{"huge-quantum", serverProgram(), [][]byte{{5}, {6}}, 1 << 40},
		{"mid-run-crash", crashy, [][]byte{{0}, {1}, {0}, {1}}, 2},
	}
	for _, run := range runs {
		space, _ := mem.NewSpace(mem.Config{})
		backend, err := NewNativeBackend(space)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunThreads(run.p, Config{Backend: backend}, run.inputs, run.quantum); err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		if after := countGoroutines(before); after > before {
			t.Errorf("%s: %d goroutines before, %d after (leak)", run.name, before, after)
		}
	}
}

// TestRunThreadsCrashIsolation: one thread crashing (fault) ends with
// its own Result.Fault while other threads complete.
func TestRunThreadsCrashIsolation(t *testing.T) {
	p := MustLink(&Program{
		Name: "crashy-thread",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "bad", N: C(1)},
				Alloc{Dst: "p", Size: C(16)},
				If{Cond: Eq(And(V("bad"), C(0xFF)), C(1)), Then: []Stmt{
					// Wild store far outside the arena: SIGSEGV.
					StoreBytes{Base: V("p"), Off: C(1 << 33), Data: []byte{1}},
				}},
				Assign{Dst: "ok", E: C(0xA11600D)},
				OutputVar{Src: "ok"},
			}},
		},
	})
	space, _ := mem.NewSpace(mem.Config{})
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{0}, {1}, {0}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Fault == nil {
		t.Error("faulting thread reported no fault")
	}
	for _, i := range []int{0, 2} {
		if results[i].Crashed() {
			t.Errorf("healthy thread %d crashed: %v", i, results[i].Fault)
		}
		if got := (Value{Bytes: results[i].Output}).Uint(); got != 0xA11600D {
			t.Errorf("thread %d output %#x", i, got)
		}
	}
}
