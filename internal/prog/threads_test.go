package prog

import (
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
)

// serverProgram handles one request: allocate, touch, compute, free,
// echo a request-derived value.
func serverProgram() *Program {
	return MustLink(&Program{
		Name: "mt-server",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Call{Callee: "handle"},
			}},
			"handle": {Body: []Stmt{
				ReadInput{Dst: "id", N: C(1)},
				Alloc{Dst: "conn", Size: C(512)},
				Alloc{Dst: "hdr", Size: C(128)},
				Store{Base: V("conn"), Src: V("id"), N: C(8)},
				Assign{Dst: "i", E: C(0)},
				While{Cond: Lt(V("i"), C(50)), Body: []Stmt{
					Assign{Dst: "x", E: Add(V("i"), V("id"))},
					Assign{Dst: "i", E: Add(V("i"), C(1))},
				}},
				Load{Dst: "back", Base: V("conn"), N: C(8)},
				FreeStmt{Ptr: V("hdr")},
				FreeStmt{Ptr: V("conn")},
				OutputVar{Src: "back"},
			}},
		},
	})
}

func TestRunThreadsSharedHeap(t *testing.T) {
	p := serverProgram()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}
	results, err := RunThreads(p, Config{Backend: backend}, inputs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Crashed() {
			t.Fatalf("thread %d crashed: %v", i, res.Fault)
		}
		// Each thread's data survived the shared-heap interleaving: the
		// value written into its connection buffer reads back intact.
		if got := (Value{Bytes: res.Output}).Uint(); got != uint64(i+1) {
			t.Errorf("thread %d echoed %d, want %d (cross-thread corruption?)", i, got, i+1)
		}
	}
	// The shared heap is consistent and leak-free.
	if err := backend.Heap().CheckIntegrity(); err != nil {
		t.Fatalf("shared heap integrity: %v", err)
	}
	if backend.Heap().LiveCount() != 0 {
		t.Errorf("leaked allocations: %d", backend.Heap().LiveCount())
	}
}

func TestRunThreadsDeterministic(t *testing.T) {
	p := serverProgram()
	run := func() []uint64 {
		space, _ := mem.NewSpace(mem.Config{})
		backend, _ := NewNativeBackend(space)
		results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{9}, {8}, {7}}, 4)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint64, len(results))
		for i, r := range results {
			out[i] = r.Steps
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic scheduling: steps %v vs %v", a, b)
		}
	}
}

// TestRunThreadsThreadLocalCCID: threads executing the same path must
// observe the same allocation-time CCID (V is thread-local state, not
// global), so one patch covers that context across all threads.
func TestRunThreadsThreadLocalCCID(t *testing.T) {
	p := serverProgram()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	space, _ := mem.NewSpace(mem.Config{})
	native, _ := NewNativeBackend(space)
	rb := &recordingBackend{HeapBackend: native}
	_, err = RunThreads(p, Config{Backend: rb, Coder: coder}, [][]byte{{1}, {2}, {3}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 3 threads x 2 allocation sites; per site, all threads must agree.
	if len(rb.ccids) != 6 {
		t.Fatalf("recorded %d CCIDs, want 6", len(rb.ccids))
	}
	distinct := make(map[uint64]int)
	for _, c := range rb.ccids {
		distinct[c]++
	}
	if len(distinct) != 2 {
		t.Fatalf("distinct CCIDs = %d, want 2 (one per allocation site)", len(distinct))
	}
	for c, n := range distinct {
		if n != 3 {
			t.Errorf("CCID %#x seen %d times, want 3 (once per thread)", c, n)
		}
	}
}

func TestRunThreadsValidation(t *testing.T) {
	p := serverProgram()
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	if _, err := RunThreads(p, Config{Backend: backend}, nil, 4); err == nil {
		t.Error("RunThreads with no inputs succeeded")
	}
}

func TestRunThreadsSingleThread(t *testing.T) {
	// One thread must behave exactly like a plain Run.
	p := serverProgram()
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	space2, _ := mem.NewSpace(mem.Config{})
	backend2, _ := NewNativeBackend(space2)
	it, err := New(p, Config{Backend: backend2})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := it.Run([]byte{5})
	if err != nil {
		t.Fatal(err)
	}
	if string(results[0].Output) != string(plain.Output) || results[0].Steps != plain.Steps {
		t.Error("single-thread RunThreads differs from plain Run")
	}
}

// TestRunThreadsCrashIsolation: one thread crashing (fault) ends with
// its own Result.Fault while other threads complete.
func TestRunThreadsCrashIsolation(t *testing.T) {
	p := MustLink(&Program{
		Name: "crashy-thread",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "bad", N: C(1)},
				Alloc{Dst: "p", Size: C(16)},
				If{Cond: Eq(And(V("bad"), C(0xFF)), C(1)), Then: []Stmt{
					// Wild store far outside the arena: SIGSEGV.
					StoreBytes{Base: V("p"), Off: C(1 << 33), Data: []byte{1}},
				}},
				Assign{Dst: "ok", E: C(0xA11600D)},
				OutputVar{Src: "ok"},
			}},
		},
	})
	space, _ := mem.NewSpace(mem.Config{})
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunThreads(p, Config{Backend: backend}, [][]byte{{0}, {1}, {0}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if results[1].Fault == nil {
		t.Error("faulting thread reported no fault")
	}
	for _, i := range []int{0, 2} {
		if results[i].Crashed() {
			t.Errorf("healthy thread %d crashed: %v", i, results[i].Fault)
		}
		if got := (Value{Bytes: results[i].Output}).Uint(); got != 0xA11600D {
			t.Errorf("thread %d output %#x", i, got)
		}
	}
}
