package prog

// Error-path coverage for the engine seam and the compiler front door,
// driven through NewExec with the compiled engine so construction
// failures surface exactly where fleet and campaign callers would hit
// them.

import (
	"strings"
	"testing"
)

// bogus AST nodes: satisfy the interfaces but are unknown to both the
// compiler's lowering switches, standing in for a future node type a
// refactor forgot to lower.
type bogusExpr struct{}

func (bogusExpr) isExpr() {}

type bogusStmt struct{}

func (bogusStmt) isStmt() {}

// TestNewExecCompiledErrors walks the construction error paths of the
// compiled engine via the engine-independent entry point: an unlinked
// program, ASTs the compiler cannot lower (mutated after Link so the
// front end does not reject them first), and an engine value outside
// the enum.
func TestNewExecCompiledErrors(t *testing.T) {
	t.Run("unlinked", func(t *testing.T) {
		p := &Program{Name: "unlinked", Funcs: map[string]*Func{
			"main": {Body: []Stmt{Return{E: C(0)}}},
		}}
		_, err := NewExec(p, Config{Backend: newNative(t), Engine: EngineCompiled})
		if err == nil || !strings.Contains(err.Error(), "not linked") {
			t.Errorf("unlinked program: err = %v, want not-linked error", err)
		}
	})
	t.Run("unknown-expression", func(t *testing.T) {
		p := hotProgram(4)
		p.Funcs["main"].Body[0] = Assign{Dst: "i", E: bogusExpr{}}
		_, err := NewExec(p, Config{Backend: newNative(t), Engine: EngineCompiled})
		if err == nil || !strings.Contains(err.Error(), "unknown expression") {
			t.Errorf("bogus operand: err = %v, want unknown-expression error", err)
		}
	})
	t.Run("unknown-statement", func(t *testing.T) {
		p := hotProgram(4)
		p.Funcs["main"].Body[0] = bogusStmt{}
		_, err := NewExec(p, Config{Backend: newNative(t), Engine: EngineCompiled})
		if err == nil || !strings.Contains(err.Error(), "unknown statement") {
			t.Errorf("bogus statement: err = %v, want unknown-statement error", err)
		}
	})
	t.Run("unknown-engine-threads", func(t *testing.T) {
		_, err := RunThreads(hotProgram(4), Config{Backend: newNative(t), Engine: Engine(99)}, [][]byte{nil}, 4)
		if err == nil || !strings.Contains(err.Error(), "unknown engine") {
			t.Errorf("RunThreads engine 99: err = %v, want unknown-engine error", err)
		}
	})
}
