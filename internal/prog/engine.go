package prog

import "fmt"

// Engine selects the execution substrate for a linked program: the
// reference tree-walking interpreter, the bytecode VM compiled from
// the same AST, or the tier-up compiled engine that promotes hot
// functions from bytecode to closure code at runtime. All three are
// differentially verified to be bit-identical (results, statistics,
// crashes, cycle accounting); the tree-walker remains the semantic
// reference, the VM the portable fast path, the compiled engine the
// top tier.
type Engine uint8

// Engines.
const (
	// EngineTree is the reference tree-walking interpreter (the zero
	// value, so existing configurations keep their behavior).
	EngineTree Engine = iota
	// EngineVM compiles the program once to flat bytecode and executes
	// it on the register VM (see compile.go / vm.go).
	EngineVM
	// EngineCompiled executes the same bytecode on the tier-up
	// Machine: functions start interpreted and are promoted to
	// closure-threaded code once hot (see jit.go; Config.TierUp sets
	// the promotion threshold).
	EngineCompiled
)

func (e Engine) String() string {
	switch e {
	case EngineTree:
		return "tree"
	case EngineVM:
		return "vm"
	case EngineCompiled:
		return "compiled"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// AllEngines lists the engines, reference first.
func AllEngines() []Engine { return []Engine{EngineTree, EngineVM, EngineCompiled} }

// ParseEngine parses an engine name (as printed by String).
func ParseEngine(s string) (Engine, error) {
	names := make([]string, 0, len(AllEngines()))
	for _, e := range AllEngines() {
		if e.String() == s {
			return e, nil
		}
		names = append(names, e.String())
	}
	return 0, fmt.Errorf("prog: unknown engine %q (valid: %s)", s, joinNames(names))
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Exec is the engine-independent execution interface: one program
// instance bound to one backend, runnable many times. Both *Interp and
// *VM implement it (and the unexported scheduling hook RunThreads
// needs), so every caller that holds an Exec works identically on
// either engine.
type Exec interface {
	Run(input []byte) (*Result, error)
}

// runner is the internal contract RunThreads needs on top of Exec.
type runner interface {
	Exec
	setSchedHook(every uint64, fn func())
}

// SetQuantumHook arranges for fn to run every `every` executed
// statements of ex, between statements (never mid-operation), on
// whichever engine backs ex. Campaign harnesses use it to walk heap
// and page-table invariants at quantum boundaries without touching
// interpreter hot paths. It reports whether ex supports hooking (both
// built-in engines do). every == 0 or fn == nil clears the hook.
func SetQuantumHook(ex Exec, every uint64, fn func()) bool {
	r, ok := ex.(runner)
	if !ok {
		return false
	}
	if every == 0 || fn == nil {
		r.setSchedHook(0, nil)
		return true
	}
	r.setSchedHook(every, fn)
	return true
}

// NewExec constructs an executor for p per cfg.Engine. EngineTree
// yields the reference interpreter; EngineVM and EngineCompiled
// compile p (once per call — share a Compiled via NewVM/NewMachine to
// amortize across instances) and yield a VM or tier-up Machine.
func NewExec(p *Program, cfg Config) (Exec, error) {
	switch cfg.Engine {
	case EngineTree:
		return New(p, cfg)
	case EngineVM:
		c, err := Compile(p, cfg.Coder)
		if err != nil {
			return nil, err
		}
		return NewVM(c, cfg)
	case EngineCompiled:
		c, err := Compile(p, cfg.Coder)
		if err != nil {
			return nil, err
		}
		return NewMachine(c, cfg)
	default:
		return nil, fmt.Errorf("prog: unknown engine %v", cfg.Engine)
	}
}
