package prog

import (
	"errors"
	"fmt"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
)

// Config configures an interpreter.
type Config struct {
	// Backend is the heap/memory substrate (native, shadow, defended).
	Backend HeapBackend
	// Coder applies calling-context encoding at instrumented call
	// sites; nil runs the program uninstrumented.
	Coder *encoding.Coder
	// MaxSteps bounds execution (0 = DefaultMaxSteps).
	MaxSteps uint64
	// MaxDepth bounds call recursion (0 = DefaultMaxDepth).
	MaxDepth int
	// Engine selects the execution substrate (tree-walker or bytecode
	// VM) for engine-generic constructors (NewExec, RunThreads). New
	// ignores it (always the tree-walker), NewVM requires consistency
	// with its Compiled program.
	Engine Engine
}

// Interpreter limits.
const (
	// DefaultMaxSteps is the default statement budget per run.
	DefaultMaxSteps = 200_000_000
	// DefaultMaxDepth is the default call-stack depth limit.
	DefaultMaxDepth = 4096
)

// Result reports one program execution.
type Result struct {
	// Output is everything the program emitted (the attack-visible
	// channel: leaked secrets show up here).
	Output []byte
	// Returned is the entry function's return value.
	Returned Value
	// Fault is non-nil if execution was terminated by a memory fault
	// (the simulation's SIGSEGV, e.g. a guard-page hit) or a heap
	// error; the program "crashed" rather than completing.
	Fault error

	// Steps is the number of statements executed.
	Steps uint64
	// Cycles is the virtual-cycle cost (see cost.go), including the
	// backend's own accounting.
	Cycles uint64
	// InterpCycles is the interpreter-side cost alone (no backend
	// delta); with a shared backend (RunThreads) the per-thread backend
	// deltas overlap, so aggregate cost is the sum of InterpCycles plus
	// the backend's total Cycles().
	InterpCycles uint64
	// EncUpdates counts encoding updates executed at instrumented
	// sites.
	EncUpdates uint64
	// Allocs and Frees count heap operations issued.
	Allocs, Frees uint64
	// AllocsByFn breaks allocations down by API (Table IV's columns);
	// index with heapsim.AllocFn values.
	AllocsByFn [8]uint64
}

// Crashed reports whether the run ended in a fault.
func (r *Result) Crashed() bool { return r.Fault != nil }

// Interp executes a linked Program against a backend.
type Interp struct {
	p         *Program
	backend   HeapBackend
	bulk      BulkLoader // non-nil when backend supports LoadInto
	coder     *encoding.Coder
	maxSteps  uint64
	maxDepth  int
	funcInstr map[string]bool // function contains >=1 instrumented site

	// Per-run state.
	input      []byte
	inPos      int
	output     []byte
	v          uint64 // the thread-local CCID variable V
	steps      uint64
	cycles     uint64
	encUpdates uint64
	allocs     uint64
	allocsByFn [8]uint64
	frees      uint64
	depth      int
	fault      error
	globals    map[string]Value
	scratch    Value // reusable buffer for transient loads (Output)

	// Cooperative scheduling hooks for RunThreads: when yield is set,
	// the interpreter calls it every yieldEvery statements.
	yield      func()
	yieldEvery uint64
}

// tick accounts one statement and enforces the step budget and the
// scheduling quantum.
func (it *Interp) tick() error {
	it.steps++
	it.cycles += CycStmt
	if it.steps > it.maxSteps {
		return fmt.Errorf("prog %s: step limit %d exceeded", it.p.Name, it.maxSteps)
	}
	if it.yield != nil && it.steps%it.yieldEvery == 0 {
		it.yield()
	}
	return nil
}

// errCrashed signals a terminating memory/heap fault up the exec stack;
// the fault itself is held in Interp.fault.
var errCrashed = errors.New("prog: execution terminated by fault")

// setSchedHook installs the cooperative-scheduling yield hook (see
// RunThreads); both engines implement it, which is what lets threaded
// execution run on either.
func (it *Interp) setSchedHook(every uint64, fn func()) {
	it.yieldEvery = every
	it.yield = fn
}

// New creates an interpreter for a linked program.
func New(p *Program, cfg Config) (*Interp, error) {
	if p.graph == nil {
		return nil, fmt.Errorf("prog %s: program is not linked", p.Name)
	}
	if cfg.Backend == nil {
		return nil, errors.New("prog: Config.Backend is required")
	}
	it := &Interp{
		p:        p,
		backend:  cfg.Backend,
		coder:    cfg.Coder,
		maxSteps: cfg.MaxSteps,
		maxDepth: cfg.MaxDepth,
	}
	it.bulk, _ = cfg.Backend.(BulkLoader)
	if it.maxSteps == 0 {
		it.maxSteps = DefaultMaxSteps
	}
	if it.maxDepth == 0 {
		it.maxDepth = DefaultMaxDepth
	}
	if cfg.Coder != nil {
		it.funcInstr = make(map[string]bool, len(p.Funcs))
		for name, f := range p.Funcs {
			it.funcInstr[name] = bodyHasInstrumentedSite(f.Body, cfg.Coder)
		}
	}
	return it, nil
}

func bodyHasInstrumentedSite(body []Stmt, coder *encoding.Coder) bool {
	for _, s := range body {
		switch st := s.(type) {
		case Call:
			if coder.Instrumented(st.site) {
				return true
			}
		case Alloc:
			if coder.Instrumented(st.site) {
				return true
			}
		case ReallocStmt:
			if coder.Instrumented(st.site) {
				return true
			}
		case If:
			if bodyHasInstrumentedSite(st.Then, coder) || bodyHasInstrumentedSite(st.Else, coder) {
				return true
			}
		case While:
			if bodyHasInstrumentedSite(st.Body, coder) {
				return true
			}
		}
	}
	return false
}

type frame struct {
	vars map[string]Value
	t    uint64 // V read at the function prologue
}

// Run executes the program on the given input and returns the result.
// Returned errors indicate malformed programs (undefined variables,
// step-limit exhaustion); memory faults end the run normally with
// Result.Fault set, mirroring a crashed process.
func (it *Interp) Run(input []byte) (*Result, error) {
	it.input = input
	it.inPos = 0
	it.output = nil
	it.v = 0
	it.steps = 0
	it.cycles = 0
	it.encUpdates = 0
	it.allocs = 0
	it.allocsByFn = [8]uint64{}
	it.frees = 0
	it.depth = 0
	it.fault = nil
	it.globals = make(map[string]Value)
	startCycles := it.backend.Cycles()

	entry := it.p.Funcs[it.p.Entry]
	f := &frame{vars: make(map[string]Value), t: it.v}
	_, ret, err := it.execBlock(entry.Body, f)
	res := &Result{
		Output:     it.output,
		Returned:   ret,
		Steps:      it.steps,
		EncUpdates: it.encUpdates,
		Allocs:     it.allocs,
		AllocsByFn: it.allocsByFn,
		Frees:      it.frees,
	}
	res.InterpCycles = it.cycles
	res.Cycles = it.cycles + (it.backend.Cycles() - startCycles)
	if err != nil {
		if errors.Is(err, errCrashed) {
			res.Fault = it.fault
			return res, nil
		}
		return nil, err
	}
	return res, nil
}

// crash records a fault and returns the crash sentinel.
func (it *Interp) crash(err error) error {
	it.fault = err
	return errCrashed
}

// execBlock runs a statement list; returned reports whether a Return
// was executed.
func (it *Interp) execBlock(body []Stmt, f *frame) (returned bool, ret Value, err error) {
	for _, s := range body {
		if err := it.tick(); err != nil {
			return false, Value{}, err
		}
		switch st := s.(type) {
		case Nop:
			// Costs the base step only.

		case Assign:
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			f.vars[st.Dst] = v

		case SetGlobal:
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			it.globals[st.Dst] = v

		case Alloc:
			if err := it.execAlloc(st, f); err != nil {
				return false, Value{}, err
			}

		case ReallocStmt:
			if err := it.execRealloc(st, f); err != nil {
				return false, Value{}, err
			}

		case FreeStmt:
			ptr, err := it.eval(st.Ptr, f)
			if err != nil {
				return false, Value{}, err
			}
			it.backend.CheckUse(ptr, UseAddress, it.v)
			it.frees++
			if err := it.backend.Free(ptr.Uint(), it.v); err != nil {
				return false, Value{}, it.crash(err)
			}

		case Load:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.eval(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			v, lerr := it.backend.Load(addr, n.Uint(), it.v)
			if lerr != nil {
				return false, Value{}, it.crash(lerr)
			}
			f.vars[st.Dst] = v

		case Store:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			src, err := it.eval(st.Src, f)
			if err != nil {
				return false, Value{}, err
			}
			n := uint64(8)
			if st.N != nil {
				nv, err := it.eval(st.N, f)
				if err != nil {
					return false, Value{}, err
				}
				n = nv.Uint()
				if n > 8 {
					n = 8
				}
			}
			// View borrows src's buffers instead of copying them; the
			// backend only reads the operand, so no allocation per store.
			if serr := it.backend.Store(addr, src.View(0, int(n)), it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case StoreVar:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			src, ok := f.vars[st.Src]
			if !ok {
				return false, Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, st.Src)
			}
			if serr := it.backend.Store(addr, src, it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case StoreBytes:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			if serr := it.backend.Store(addr, Value{Bytes: st.Data}, it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case Memcpy:
			dst, err := it.eval(st.Dst, f)
			if err != nil {
				return false, Value{}, err
			}
			src, err := it.eval(st.Src, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.eval(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			it.backend.CheckUse(dst, UseAddress, it.v)
			it.backend.CheckUse(src, UseAddress, it.v)
			if merr := it.backend.Memcpy(dst.Uint(), src.Uint(), n.Uint(), it.v); merr != nil {
				return false, Value{}, it.crash(merr)
			}

		case Memset:
			dst, err := it.eval(st.Dst, f)
			if err != nil {
				return false, Value{}, err
			}
			b, err := it.eval(st.B, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.eval(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			it.backend.CheckUse(dst, UseAddress, it.v)
			if merr := it.backend.Memset(dst.Uint(), byte(b.Uint()), n.Uint(), it.v); merr != nil {
				return false, Value{}, it.crash(merr)
			}

		case ReadInput:
			n, err := it.eval(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			// Clamp in uint64 space: a request of 2^63 or more must
			// saturate at the remaining input, not wrap negative.
			take := len(it.input) - it.inPos
			if nu := n.Uint(); nu < uint64(take) {
				take = int(nu)
			}
			buf := make([]byte, take)
			copy(buf, it.input[it.inPos:it.inPos+take])
			it.inPos += take
			f.vars[st.Dst] = Value{Bytes: buf}

		case Output:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.eval(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			// The loaded value only feeds the use check and the output
			// buffer, so it can live in the reusable scratch Value when
			// the backend supports buffer reuse.
			if it.bulk != nil {
				if lerr := it.bulk.LoadInto(&it.scratch, addr, n.Uint(), it.v); lerr != nil {
					return false, Value{}, it.crash(lerr)
				}
				it.backend.CheckUse(it.scratch, UseOutput, it.v)
				it.output = append(it.output, it.scratch.Bytes...)
				break
			}
			v, lerr := it.backend.Load(addr, n.Uint(), it.v)
			if lerr != nil {
				return false, Value{}, it.crash(lerr)
			}
			it.backend.CheckUse(v, UseOutput, it.v)
			it.output = append(it.output, v.Bytes...)

		case OutputVar:
			v, ok := f.vars[st.Src]
			if !ok {
				return false, Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, st.Src)
			}
			it.backend.CheckUse(v, UseOutput, it.v)
			it.output = append(it.output, v.Bytes...)

		case If:
			cond, err := it.eval(st.Cond, f)
			if err != nil {
				return false, Value{}, err
			}
			it.backend.CheckUse(cond, UseControlFlow, it.v)
			block := st.Then
			if cond.Uint() == 0 {
				block = st.Else
			}
			r, rv, err := it.execBlock(block, f)
			if err != nil || r {
				return r, rv, err
			}

		case While:
			for {
				if err := it.tick(); err != nil {
					return false, Value{}, err
				}
				cond, err := it.eval(st.Cond, f)
				if err != nil {
					return false, Value{}, err
				}
				it.backend.CheckUse(cond, UseControlFlow, it.v)
				if cond.Uint() == 0 {
					break
				}
				r, rv, err := it.execBlock(st.Body, f)
				if err != nil || r {
					return r, rv, err
				}
			}

		case Call:
			rv, err := it.execCall(st, f)
			if err != nil {
				return false, Value{}, err
			}
			if st.Dst != "" {
				f.vars[st.Dst] = rv
			}

		case Return:
			if st.E == nil {
				return true, Value{}, nil
			}
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			return true, v, nil

		default:
			return false, Value{}, fmt.Errorf("prog %s: unknown statement %T", it.p.Name, s)
		}
	}
	return false, Value{}, nil
}

func (it *Interp) execAlloc(st Alloc, f *frame) error {
	size, err := it.eval(st.Size, f)
	if err != nil {
		return err
	}
	n := uint64(1)
	if st.N != nil {
		nv, err := it.eval(st.N, f)
		if err != nil {
			return err
		}
		n = nv.Uint()
	}
	align := uint64(0)
	if st.Align != nil {
		av, err := it.eval(st.Align, f)
		if err != nil {
			return err
		}
		align = av.Uint()
	}
	ccid := it.v
	switch {
	case st.CCID != nil:
		cv, err := it.eval(st.CCID, f)
		if err != nil {
			return err
		}
		ccid = cv.Uint()
		it.encUpdates++
		it.cycles += CycEncUpdatePCC
	case it.coder != nil && it.coder.Instrumented(st.site):
		ccid = it.coder.Update(f.t, st.site)
		it.encUpdates++
		it.cycles += it.encCost()
	}
	it.allocs++
	it.allocsByFn[st.Fn]++
	ptr, aerr := it.backend.Alloc(st.Fn, ccid, n, size.Uint(), align)
	if aerr != nil {
		return it.crash(aerr)
	}
	f.vars[st.Dst] = Scalar(ptr)
	return nil
}

func (it *Interp) execRealloc(st ReallocStmt, f *frame) error {
	ptr, err := it.eval(st.Ptr, f)
	if err != nil {
		return err
	}
	size, err := it.eval(st.Size, f)
	if err != nil {
		return err
	}
	ccid := it.v
	switch {
	case st.CCID != nil:
		cv, err := it.eval(st.CCID, f)
		if err != nil {
			return err
		}
		ccid = cv.Uint()
		it.encUpdates++
		it.cycles += CycEncUpdatePCC
	case it.coder != nil && it.coder.Instrumented(st.site):
		ccid = it.coder.Update(f.t, st.site)
		it.encUpdates++
		it.cycles += it.encCost()
	}
	it.allocs++
	it.allocsByFn[heapsim.FnRealloc]++
	newPtr, rerr := it.backend.Realloc(ccid, ptr.Uint(), size.Uint())
	if rerr != nil {
		return it.crash(rerr)
	}
	f.vars[st.Dst] = Scalar(newPtr)
	return nil
}

func (it *Interp) execCall(st Call, f *frame) (Value, error) {
	callee := it.p.Funcs[st.Callee]
	args := make([]Value, len(st.Args))
	for i, a := range st.Args {
		v, err := it.eval(a, f)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if len(args) != len(callee.Params) {
		return Value{}, fmt.Errorf("prog %s: call to %s with %d args, want %d",
			it.p.Name, st.Callee, len(args), len(callee.Params))
	}
	it.depth++
	if it.depth > it.maxDepth {
		it.depth--
		return Value{}, fmt.Errorf("prog %s: call depth limit %d exceeded", it.p.Name, it.maxDepth)
	}
	defer func() { it.depth-- }()

	instrumented := it.coder != nil && it.coder.Instrumented(st.site)
	if instrumented {
		it.v = it.coder.Update(f.t, st.site)
		it.encUpdates++
		it.cycles += it.encCost()
	}
	it.cycles += CycCall
	nf := &frame{vars: make(map[string]Value, len(args)), t: it.v}
	for i, p := range callee.Params {
		nf.vars[p] = args[i]
	}
	if it.funcInstr != nil && it.funcInstr[st.Callee] {
		it.cycles += CycEncPrologue
	}
	_, ret, err := it.execBlock(callee.Body, nf)
	// Restore discipline: V returns to the caller's context value. For
	// uninstrumented sites this is a no-op by the invariant that every
	// callee restores V before returning.
	it.v = f.t
	if err != nil {
		return Value{}, err
	}
	return ret, nil
}

// encCost is the virtual-cycle cost of one encoding update under the
// bound encoder kind.
func (it *Interp) encCost() uint64 {
	if it.coder.Kind() == encoding.EncoderPCC {
		return CycEncUpdatePCC
	}
	return CycEncUpdateAdditive
}

// evalAddr evaluates base+off, applying address use-point checks.
func (it *Interp) evalAddr(base, off Expr, f *frame) (uint64, error) {
	b, err := it.eval(base, f)
	if err != nil {
		return 0, err
	}
	it.backend.CheckUse(b, UseAddress, it.v)
	if off == nil {
		return b.Uint(), nil
	}
	o, err := it.eval(off, f)
	if err != nil {
		return 0, err
	}
	it.backend.CheckUse(o, UseAddress, it.v)
	return b.Uint() + o.Uint(), nil
}

func (it *Interp) eval(e Expr, f *frame) (Value, error) {
	switch ex := e.(type) {
	case Const:
		return Scalar(ex.V), nil
	case Var:
		v, ok := f.vars[ex.Name]
		if !ok {
			return Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, ex.Name)
		}
		return v, nil
	case InputLen:
		return Scalar(uint64(len(it.input))), nil
	case InputRemaining:
		return Scalar(uint64(len(it.input) - it.inPos)), nil
	case Global:
		if v, ok := it.globals[ex.Name]; ok {
			return v, nil
		}
		return Scalar(0), nil
	case Bin:
		a, err := it.eval(ex.A, f)
		if err != nil {
			return Value{}, err
		}
		b, err := it.eval(ex.B, f)
		if err != nil {
			return Value{}, err
		}
		return applyBin(ex.Op, a, b)
	default:
		return Value{}, fmt.Errorf("prog %s: unknown expression %T", it.p.Name, e)
	}
}

func applyBin(op BinOp, a, b Value) (Value, error) {
	r, err := binScalar(op, a.Uint(), b.Uint())
	if err != nil {
		return Value{}, err
	}
	return combineScalar(r, a, b), nil
}

// binScalar is the scalar ALU shared by the tree-walker and the
// bytecode VM; keeping one implementation is what makes "same operator,
// same bits" a structural property rather than a test obligation.
func binScalar(op BinOp, x, y uint64) (uint64, error) {
	var r uint64
	switch op {
	case OpAdd:
		r = x + y
	case OpSub:
		r = x - y
	case OpMul:
		r = x * y
	case OpDiv:
		if y != 0 {
			r = x / y
		}
	case OpMod:
		if y != 0 {
			r = x % y
		}
	case OpAnd:
		r = x & y
	case OpOr:
		r = x | y
	case OpXor:
		r = x ^ y
	case OpShl:
		r = x << (y & 63)
	case OpShr:
		r = x >> (y & 63)
	case OpLt:
		r = b2u(x < y)
	case OpLe:
		r = b2u(x <= y)
	case OpEq:
		r = b2u(x == y)
	case OpNe:
		r = b2u(x != y)
	case OpGt:
		r = b2u(x > y)
	case OpGe:
		r = b2u(x >= y)
	default:
		return 0, fmt.Errorf("prog: unknown binary op %d", op)
	}
	return r, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
