package prog

import (
	"encoding/binary"
	"errors"
	"fmt"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
)

// Config configures an interpreter.
type Config struct {
	// Backend is the heap/memory substrate (native, shadow, defended).
	Backend HeapBackend
	// Coder applies calling-context encoding at instrumented call
	// sites; nil runs the program uninstrumented.
	Coder *encoding.Coder
	// MaxSteps bounds execution (0 = DefaultMaxSteps).
	MaxSteps uint64
	// MaxDepth bounds call recursion (0 = DefaultMaxDepth).
	MaxDepth int
	// Engine selects the execution substrate (tree-walker, bytecode
	// VM, or tier-up compiled engine) for engine-generic constructors
	// (NewExec, RunThreads). New ignores it (always the tree-walker),
	// NewVM/NewMachine require consistency with their Compiled
	// program.
	Engine Engine
	// TierUp is the compiled engine's promotion threshold: how many
	// times a function executes on the cold bytecode tier before it
	// is compiled to closures (0 = DefaultTierUp). Only
	// EngineCompiled reads it.
	TierUp uint64
	// Closures optionally shares closure-compiled code across
	// Machines executing the same Compiled program (fleet workers,
	// RunThreads groups). Must have been built for that Compiled.
	// Only EngineCompiled reads it.
	Closures *ClosureCache
}

// Interpreter limits.
const (
	// DefaultMaxSteps is the default statement budget per run.
	DefaultMaxSteps = 200_000_000
	// DefaultMaxDepth is the default call-stack depth limit.
	DefaultMaxDepth = 4096
)

// Result reports one program execution.
type Result struct {
	// Output is everything the program emitted (the attack-visible
	// channel: leaked secrets show up here).
	Output []byte
	// Returned is the entry function's return value.
	Returned Value
	// Fault is non-nil if execution was terminated by a memory fault
	// (the simulation's SIGSEGV, e.g. a guard-page hit) or a heap
	// error; the program "crashed" rather than completing.
	Fault error

	// Steps is the number of statements executed.
	Steps uint64
	// Cycles is the virtual-cycle cost (see cost.go), including the
	// backend's own accounting.
	Cycles uint64
	// InterpCycles is the interpreter-side cost alone (no backend
	// delta); with a shared backend (RunThreads) the per-thread backend
	// deltas overlap, so aggregate cost is the sum of InterpCycles plus
	// the backend's total Cycles().
	InterpCycles uint64
	// EncUpdates counts encoding updates executed at instrumented
	// sites.
	EncUpdates uint64
	// Allocs and Frees count heap operations issued.
	Allocs, Frees uint64
	// AllocsByFn breaks allocations down by API (Table IV's columns);
	// index with heapsim.AllocFn values.
	AllocsByFn [8]uint64
}

// Crashed reports whether the run ended in a fault.
func (r *Result) Crashed() bool { return r.Fault != nil }

// ifunc is a function with its precomputed instrumentation flag, so
// the per-call path resolves callee body and prologue cost in one map
// probe.
type ifunc struct {
	fn    *Func
	instr bool // function contains >=1 instrumented site
}

// Interp executes a linked Program against a backend.
//
// The hot paths are allocation-free in steady state: per-site encoding
// updates come from a dense precompiled table (the same SiteUpdate
// records the bytecode compiler embeds), variable slots are recycled
// register-style storage keyed by activation generation, and scalar
// expressions evaluate without materializing Values. The general
// evaluator is retained for shadowed or non-scalar values and is
// bit-identical to the fast path by construction (same binScalar, same
// byte encoding).
type Interp struct {
	p        *Program
	backend  HeapBackend
	bulk     BulkLoader // non-nil when backend supports LoadInto
	coder    *encoding.Coder
	maxSteps uint64
	maxDepth int

	// Precompiled tables, built once at New.
	siteUpd  []encoding.SiteUpdate // per-site V update, indexed by SiteID (nil = uninstrumented run)
	encUpd   uint64                // cycle cost of one encoding update under the bound coder
	funcs    map[string]*ifunc
	checkUse bool // backend observes use points (CheckUse not elidable)

	// Per-run state.
	input      []byte
	inPos      int
	output     []byte
	v          uint64 // the thread-local CCID variable V
	steps      uint64
	cycles     uint64
	encUpdates uint64
	allocs     uint64
	allocsByFn [8]uint64
	frees      uint64
	depth      int
	fault      error

	// Recycled storage: frames are reused by call depth, variable and
	// global slots by name; a slot is live only when its generation
	// matches its frame's (or the run's, for globals).
	fstack   []*frame
	gen      uint64 // activation generation counter
	globals  map[string]*vslot
	runGen   uint64  // current run's generation, validates global slots
	scratch  Value   // reusable buffer for transient loads (Output)
	ckBuf    [8]byte // staging for fast-path use-check operands
	storeBuf [8]byte // staging for fast-path store operands

	// Cooperative scheduling hooks for RunThreads: when yield is set,
	// the interpreter calls it every yieldEvery statements.
	yield      func()
	yieldEvery uint64
}

// vslot is one variable's recycled storage; the slot is defined in its
// frame's current activation only when gen matches.
type vslot struct {
	reg
	gen uint64
}

// frame is one recycled activation record, reused across calls at the
// same depth; bumping gen invalidates every slot at no per-slot cost.
type frame struct {
	vars map[string]*vslot
	gen  uint64
	t    uint64 // V read at the function prologue
	ret  reg    // staging for fast-path return values
}

// lookup resolves a variable in the frame's current activation.
func (f *frame) lookup(name string) (*vslot, bool) {
	sl := f.vars[name]
	if sl == nil || sl.gen != f.gen {
		return nil, false
	}
	return sl, true
}

// define returns the slot for name, marking it defined in the current
// activation (the caller writes the value).
func (f *frame) define(name string) *vslot {
	sl := f.vars[name]
	if sl == nil {
		sl = &vslot{}
		f.vars[name] = sl
	}
	sl.gen = f.gen
	return sl
}

// tick accounts one statement and enforces the step budget and the
// scheduling quantum.
func (it *Interp) tick() error {
	it.steps++
	it.cycles += CycStmt
	if it.steps > it.maxSteps {
		return fmt.Errorf("prog %s: step limit %d exceeded", it.p.Name, it.maxSteps)
	}
	if it.yield != nil && it.steps%it.yieldEvery == 0 {
		it.yield()
	}
	return nil
}

// errCrashed signals a terminating memory/heap fault up the exec stack;
// the fault itself is held in Interp.fault.
var errCrashed = errors.New("prog: execution terminated by fault")

// setSchedHook installs the cooperative-scheduling yield hook (see
// RunThreads); both engines implement it, which is what lets threaded
// execution run on either.
func (it *Interp) setSchedHook(every uint64, fn func()) {
	it.yieldEvery = every
	it.yield = fn
}

// New creates an interpreter for a linked program.
func New(p *Program, cfg Config) (*Interp, error) {
	if p.graph == nil {
		return nil, fmt.Errorf("prog %s: program is not linked", p.Name)
	}
	if cfg.Backend == nil {
		return nil, errors.New("prog: Config.Backend is required")
	}
	it := &Interp{
		p:        p,
		backend:  cfg.Backend,
		coder:    cfg.Coder,
		maxSteps: cfg.MaxSteps,
		maxDepth: cfg.MaxDepth,
		globals:  make(map[string]*vslot),
	}
	it.bulk, _ = cfg.Backend.(BulkLoader)
	// Backends that declare CheckUse a no-op let the use-point calls be
	// elided entirely (see UseObserver); wrappers that do not implement
	// the interface keep seeing every call.
	it.checkUse = true
	if obs, ok := cfg.Backend.(UseObserver); ok && !obs.ObservesUse() {
		it.checkUse = false
	}
	if it.maxSteps == 0 {
		it.maxSteps = DefaultMaxSteps
	}
	if it.maxDepth == 0 {
		it.maxDepth = DefaultMaxDepth
	}
	if cfg.Coder != nil {
		it.encUpd = CycEncUpdateAdditive
		if cfg.Coder.Kind() == encoding.EncoderPCC {
			it.encUpd = CycEncUpdatePCC
		}
		n := p.graph.NumEdges()
		it.siteUpd = make([]encoding.SiteUpdate, n)
		for s := 0; s < n; s++ {
			it.siteUpd[s] = cfg.Coder.CompileSite(callgraph.SiteID(s))
		}
	}
	it.funcs = make(map[string]*ifunc, len(p.Funcs))
	for name, fn := range p.Funcs {
		fi := &ifunc{fn: fn}
		if cfg.Coder != nil {
			fi.instr = bodyHasInstrumentedSite(fn.Body, cfg.Coder)
		}
		it.funcs[name] = fi
	}
	return it, nil
}

func bodyHasInstrumentedSite(body []Stmt, coder *encoding.Coder) bool {
	for _, s := range body {
		switch st := s.(type) {
		case Call:
			if coder.Instrumented(st.site) {
				return true
			}
		case Alloc:
			if coder.Instrumented(st.site) {
				return true
			}
		case ReallocStmt:
			if coder.Instrumented(st.site) {
				return true
			}
		case If:
			if bodyHasInstrumentedSite(st.Then, coder) || bodyHasInstrumentedSite(st.Else, coder) {
				return true
			}
		case While:
			if bodyHasInstrumentedSite(st.Body, coder) {
				return true
			}
		}
	}
	return false
}

// frameAt returns the recycled frame for call depth d, growing the
// stack on first use.
func (it *Interp) frameAt(d int) *frame {
	for len(it.fstack) <= d {
		it.fstack = append(it.fstack, &frame{vars: make(map[string]*vslot)})
	}
	return it.fstack[d]
}

// Run executes the program on the given input and returns the result.
// Returned errors indicate malformed programs (undefined variables,
// step-limit exhaustion); memory faults end the run normally with
// Result.Fault set, mirroring a crashed process.
func (it *Interp) Run(input []byte) (*Result, error) {
	it.input = input
	it.inPos = 0
	it.output = nil
	it.v = 0
	it.steps = 0
	it.cycles = 0
	it.encUpdates = 0
	it.allocs = 0
	it.allocsByFn = [8]uint64{}
	it.frees = 0
	it.depth = 0
	it.fault = nil
	it.runGen++
	startCycles := it.backend.Cycles()

	entry := it.funcs[it.p.Entry]
	f := it.frameAt(0)
	it.gen++
	f.gen = it.gen
	f.t = it.v
	_, ret, err := it.execBlock(entry.fn.Body, f)
	res := &Result{
		Output: it.output,
		// The returned value may live in recycled frame storage; copy it
		// out so Results stay independent across runs.
		Returned:   ret.Clone(),
		Steps:      it.steps,
		EncUpdates: it.encUpdates,
		Allocs:     it.allocs,
		AllocsByFn: it.allocsByFn,
		Frees:      it.frees,
	}
	res.InterpCycles = it.cycles
	res.Cycles = it.cycles + (it.backend.Cycles() - startCycles)
	if err != nil {
		if errors.Is(err, errCrashed) {
			res.Fault = it.fault
			return res, nil
		}
		return nil, err
	}
	return res, nil
}

// crash records a fault and returns the crash sentinel.
func (it *Interp) crash(err error) error {
	it.fault = err
	return errCrashed
}

// siteUpdate resolves the precompiled V update for a site; out-of-range
// or unplanned sites read as uninstrumented.
func (it *Interp) siteUpdate(s callgraph.SiteID) encoding.SiteUpdate {
	if s >= 0 && int(s) < len(it.siteUpd) {
		return it.siteUpd[s]
	}
	return encoding.SiteUpdate{}
}

// execBlock runs a statement list; returned reports whether a Return
// was executed.
func (it *Interp) execBlock(body []Stmt, f *frame) (returned bool, ret Value, err error) {
	for _, s := range body {
		if err := it.tick(); err != nil {
			return false, Value{}, err
		}
		switch st := s.(type) {
		case Nop:
			// Costs the base step only.

		case Assign:
			u, ok, err := it.evalU(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			if ok {
				f.define(st.Dst).setScalar(u)
				break
			}
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			f.define(st.Dst).set(&v)

		case SetGlobal:
			u, ok, err := it.evalU(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			sl := it.globals[st.Dst]
			if sl == nil {
				sl = &vslot{}
				it.globals[st.Dst] = sl
			}
			sl.gen = it.runGen
			if ok {
				sl.setScalar(u)
				break
			}
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			sl.set(&v)

		case Alloc:
			if err := it.execAlloc(st, f); err != nil {
				return false, Value{}, err
			}

		case ReallocStmt:
			if err := it.execRealloc(st, f); err != nil {
				return false, Value{}, err
			}

		case FreeStmt:
			u, v, fast, err := it.evalV(st.Ptr, f)
			if err != nil {
				return false, Value{}, err
			}
			it.use(u, v, fast, UseAddress)
			it.frees++
			if err := it.backend.Free(u, it.v); err != nil {
				return false, Value{}, it.crash(err)
			}

		case Load:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.evalNum(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			if it.bulk != nil {
				sl := f.define(st.Dst)
				if lerr := it.loadIntoSlot(sl, addr, n); lerr != nil {
					return false, Value{}, it.crash(lerr)
				}
				break
			}
			v, lerr := it.backend.Load(addr, n, it.v)
			if lerr != nil {
				return false, Value{}, it.crash(lerr)
			}
			it.adopt(f.define(st.Dst), v)

		case Store:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			srcU, srcV, fast, err := it.evalV(st.Src, f)
			if err != nil {
				return false, Value{}, err
			}
			n := uint64(8)
			if st.N != nil {
				nv, err := it.evalNum(st.N, f)
				if err != nil {
					return false, Value{}, err
				}
				n = nv
				if n > 8 {
					n = 8
				}
			}
			// The operand view borrows buffers instead of copying them;
			// the backend only reads it, so no allocation per store.
			var op Value
			if fast {
				binary.LittleEndian.PutUint64(it.storeBuf[:], srcU)
				op = Value{Bytes: it.storeBuf[:n]}
			} else {
				op = srcV.View(0, int(n))
			}
			if serr := it.backend.Store(addr, op, it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case StoreVar:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			sl, ok := f.lookup(st.Src)
			if !ok {
				return false, Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, st.Src)
			}
			if serr := it.backend.Store(addr, sl.val, it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case StoreBytes:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			if serr := it.backend.Store(addr, Value{Bytes: st.Data}, it.v); serr != nil {
				return false, Value{}, it.crash(serr)
			}

		case Memcpy:
			dstU, dstV, dstF, err := it.evalV(st.Dst, f)
			if err != nil {
				return false, Value{}, err
			}
			srcU, srcV, srcF, err := it.evalV(st.Src, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.evalNum(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			it.use(dstU, dstV, dstF, UseAddress)
			it.use(srcU, srcV, srcF, UseAddress)
			if merr := it.backend.Memcpy(dstU, srcU, n, it.v); merr != nil {
				return false, Value{}, it.crash(merr)
			}

		case Memset:
			dstU, dstV, dstF, err := it.evalV(st.Dst, f)
			if err != nil {
				return false, Value{}, err
			}
			b, err := it.evalNum(st.B, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.evalNum(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			it.use(dstU, dstV, dstF, UseAddress)
			if merr := it.backend.Memset(dstU, byte(b), n, it.v); merr != nil {
				return false, Value{}, it.crash(merr)
			}

		case ReadInput:
			n, err := it.evalNum(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			// Clamp in uint64 space: a request of 2^63 or more must
			// saturate at the remaining input, not wrap negative.
			take := len(it.input) - it.inPos
			if n < uint64(take) {
				take = int(n)
			}
			src := Value{Bytes: it.input[it.inPos : it.inPos+take]}
			f.define(st.Dst).set(&src)
			it.inPos += take

		case Output:
			addr, err := it.evalAddr(st.Base, st.Off, f)
			if err != nil {
				return false, Value{}, err
			}
			n, err := it.evalNum(st.N, f)
			if err != nil {
				return false, Value{}, err
			}
			// The loaded value only feeds the use check and the output
			// buffer, so it can live in the reusable scratch Value when
			// the backend supports buffer reuse.
			if it.bulk != nil {
				if lerr := it.bulk.LoadInto(&it.scratch, addr, n, it.v); lerr != nil {
					return false, Value{}, it.crash(lerr)
				}
				if it.checkUse {
					it.backend.CheckUse(it.scratch, UseOutput, it.v)
				}
				it.output = append(it.output, it.scratch.Bytes...)
				break
			}
			v, lerr := it.backend.Load(addr, n, it.v)
			if lerr != nil {
				return false, Value{}, it.crash(lerr)
			}
			if it.checkUse {
				it.backend.CheckUse(v, UseOutput, it.v)
			}
			it.output = append(it.output, v.Bytes...)

		case OutputVar:
			sl, ok := f.lookup(st.Src)
			if !ok {
				return false, Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, st.Src)
			}
			if it.checkUse {
				it.backend.CheckUse(sl.val, UseOutput, it.v)
			}
			it.output = append(it.output, sl.val.Bytes...)

		case If:
			u, v, fast, err := it.evalV(st.Cond, f)
			if err != nil {
				return false, Value{}, err
			}
			it.use(u, v, fast, UseControlFlow)
			block := st.Then
			if u == 0 {
				block = st.Else
			}
			r, rv, err := it.execBlock(block, f)
			if err != nil || r {
				return r, rv, err
			}

		case While:
			for {
				if err := it.tick(); err != nil {
					return false, Value{}, err
				}
				u, v, fast, err := it.evalV(st.Cond, f)
				if err != nil {
					return false, Value{}, err
				}
				it.use(u, v, fast, UseControlFlow)
				if u == 0 {
					break
				}
				r, rv, err := it.execBlock(st.Body, f)
				if err != nil || r {
					return r, rv, err
				}
			}

		case Call:
			rv, err := it.execCall(st, f)
			if err != nil {
				return false, Value{}, err
			}
			if st.Dst != "" {
				f.define(st.Dst).set(&rv)
			}

		case Return:
			if st.E == nil {
				return true, Value{}, nil
			}
			u, ok, err := it.evalU(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			if ok {
				// Stage the scalar in the frame's return register; the
				// caller copies it into a slot (or Run clones it) before
				// the frame can be reused.
				f.ret.setScalar(u)
				return true, f.ret.val, nil
			}
			v, err := it.eval(st.E, f)
			if err != nil {
				return false, Value{}, err
			}
			return true, v, nil

		default:
			return false, Value{}, fmt.Errorf("prog %s: unknown statement %T", it.p.Name, s)
		}
	}
	return false, Value{}, nil
}

// loadIntoSlot bulk-loads into a slot's owned buffers, lending the
// slot's parked shadow capacity to the backend and harvesting any
// growth back (the tree-walker twin of the VM's loadIntoReg).
func (it *Interp) loadIntoSlot(sl *vslot, addr, n uint64) error {
	sl.val.Valid = sl.validCap
	sl.val.Origin = sl.originCap
	err := it.bulk.LoadInto(&sl.val, addr, n, it.v)
	if sl.val.Valid != nil {
		sl.validCap = sl.val.Valid
	}
	if sl.val.Origin != nil {
		sl.originCap = sl.val.Origin
	}
	return err
}

// adopt moves an owned Value into a slot without copying (Load results
// own their buffers).
func (it *Interp) adopt(sl *vslot, v Value) {
	sl.val = v
	if v.Valid != nil {
		sl.validCap = v.Valid
	}
	if v.Origin != nil {
		sl.originCap = v.Origin
	}
}

func (it *Interp) execAlloc(st Alloc, f *frame) error {
	size, err := it.evalNum(st.Size, f)
	if err != nil {
		return err
	}
	n := uint64(1)
	if st.N != nil {
		n, err = it.evalNum(st.N, f)
		if err != nil {
			return err
		}
	}
	align := uint64(0)
	if st.Align != nil {
		align, err = it.evalNum(st.Align, f)
		if err != nil {
			return err
		}
	}
	ccid := it.v
	if st.CCID != nil {
		cv, err := it.evalNum(st.CCID, f)
		if err != nil {
			return err
		}
		ccid = cv
		it.encUpdates++
		it.cycles += CycEncUpdatePCC
	} else if u := it.siteUpdate(st.site); u.Instrumented {
		ccid = u.Apply(f.t)
		it.encUpdates++
		it.cycles += it.encUpd
	}
	it.allocs++
	it.allocsByFn[st.Fn]++
	ptr, aerr := it.backend.Alloc(st.Fn, ccid, n, size, align)
	if aerr != nil {
		return it.crash(aerr)
	}
	f.define(st.Dst).setScalar(ptr)
	return nil
}

func (it *Interp) execRealloc(st ReallocStmt, f *frame) error {
	ptr, err := it.evalNum(st.Ptr, f)
	if err != nil {
		return err
	}
	size, err := it.evalNum(st.Size, f)
	if err != nil {
		return err
	}
	ccid := it.v
	if st.CCID != nil {
		cv, err := it.evalNum(st.CCID, f)
		if err != nil {
			return err
		}
		ccid = cv
		it.encUpdates++
		it.cycles += CycEncUpdatePCC
	} else if u := it.siteUpdate(st.site); u.Instrumented {
		ccid = u.Apply(f.t)
		it.encUpdates++
		it.cycles += it.encUpd
	}
	it.allocs++
	it.allocsByFn[heapsim.FnRealloc]++
	newPtr, rerr := it.backend.Realloc(ccid, ptr, size)
	if rerr != nil {
		return it.crash(rerr)
	}
	f.define(st.Dst).setScalar(newPtr)
	return nil
}

func (it *Interp) execCall(st Call, f *frame) (Value, error) {
	fi := it.funcs[st.Callee]
	params := fi.fn.Params
	// Arguments evaluate in order directly into the callee's recycled
	// frame; extras beyond the parameter list still evaluate (for error
	// ordering) before the arity check fires, matching the original
	// args-then-check sequence.
	cf := it.frameAt(it.depth + 1)
	it.gen++
	cf.gen = it.gen
	for i, a := range st.Args {
		u, ok, err := it.evalU(a, f)
		if err != nil {
			return Value{}, err
		}
		var v Value
		if !ok {
			v, err = it.eval(a, f)
			if err != nil {
				return Value{}, err
			}
		}
		if i < len(params) {
			sl := cf.define(params[i])
			if ok {
				sl.setScalar(u)
			} else {
				sl.set(&v)
			}
		}
	}
	if len(st.Args) != len(params) {
		return Value{}, fmt.Errorf("prog %s: call to %s with %d args, want %d",
			it.p.Name, st.Callee, len(st.Args), len(params))
	}
	it.depth++
	if it.depth > it.maxDepth {
		it.depth--
		return Value{}, fmt.Errorf("prog %s: call depth limit %d exceeded", it.p.Name, it.maxDepth)
	}
	defer func() { it.depth-- }()

	if u := it.siteUpdate(st.site); u.Instrumented {
		it.v = u.Apply(f.t)
		it.encUpdates++
		it.cycles += it.encUpd
	}
	it.cycles += CycCall
	cf.t = it.v
	if fi.instr {
		it.cycles += CycEncPrologue
	}
	_, ret, err := it.execBlock(fi.fn.Body, cf)
	// Restore discipline: V returns to the caller's context value. For
	// uninstrumented sites this is a no-op by the invariant that every
	// callee restores V before returning.
	it.v = f.t
	if err != nil {
		return Value{}, err
	}
	return ret, nil
}

// evalAddr evaluates base+off, applying address use-point checks.
func (it *Interp) evalAddr(base, off Expr, f *frame) (uint64, error) {
	bu, bv, bf, err := it.evalV(base, f)
	if err != nil {
		return 0, err
	}
	it.use(bu, bv, bf, UseAddress)
	if off == nil {
		return bu, nil
	}
	ou, ov, of, err := it.evalV(off, f)
	if err != nil {
		return 0, err
	}
	it.use(ou, ov, of, UseAddress)
	return bu + ou, nil
}

// use applies a use-point check on an evaluated operand: fast-path
// scalars are staged in an 8-byte scratch (bit-identical to the Value
// the general evaluator would have produced), full Values pass through
// unchanged. Elided entirely when the backend does not observe uses.
func (it *Interp) use(u uint64, v Value, fast bool, kind UseKind) {
	if !it.checkUse {
		return
	}
	if fast {
		binary.LittleEndian.PutUint64(it.ckBuf[:], u)
		it.backend.CheckUse(Value{Bytes: it.ckBuf[:]}, kind, it.v)
		return
	}
	it.backend.CheckUse(v, kind, it.v)
}

// evalV evaluates e for a consumer that needs the scalar and (for use
// checks) the operand value: fast=true means the expression reduced on
// the scalar path and v is unset.
func (it *Interp) evalV(e Expr, f *frame) (u uint64, v Value, fast bool, err error) {
	u, ok, err := it.evalU(e, f)
	if err != nil {
		return 0, Value{}, false, err
	}
	if ok {
		return u, Value{}, true, nil
	}
	v, err = it.eval(e, f)
	if err != nil {
		return 0, Value{}, false, err
	}
	return v.Uint(), v, false, nil
}

// evalNum evaluates e for a pure numeric consumer (sizes, counts).
func (it *Interp) evalNum(e Expr, f *frame) (uint64, error) {
	u, ok, err := it.evalU(e, f)
	if err != nil {
		return 0, err
	}
	if ok {
		return u, nil
	}
	v, err := it.eval(e, f)
	if err != nil {
		return 0, err
	}
	return v.Uint(), nil
}

// evalU is the allocation-free scalar fast path: it reduces pure
// fully-valid 8-byte expressions without materializing Values. ok=false
// means the expression involves shadowed or non-8-byte values and needs
// the general evaluator; evaluation is side-effect-free, so callers
// fall back to eval on the same expression.
func (it *Interp) evalU(e Expr, f *frame) (u uint64, ok bool, err error) {
	switch ex := e.(type) {
	case Const:
		return ex.V, true, nil
	case Var:
		sl, found := f.lookup(ex.Name)
		if !found {
			return 0, false, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, ex.Name)
		}
		v := &sl.val
		if v.Valid == nil && v.Origin == nil && len(v.Bytes) == 8 {
			return binary.LittleEndian.Uint64(v.Bytes), true, nil
		}
		return 0, false, nil
	case Bin:
		a, ok, err := it.evalU(ex.A, f)
		if err != nil || !ok {
			return 0, false, err
		}
		b, ok, err := it.evalU(ex.B, f)
		if err != nil || !ok {
			return 0, false, err
		}
		r, err := binScalar(ex.Op, a, b)
		if err != nil {
			return 0, false, err
		}
		return r, true, nil
	case InputLen:
		return uint64(len(it.input)), true, nil
	case InputRemaining:
		return uint64(len(it.input) - it.inPos), true, nil
	case Global:
		sl := it.globals[ex.Name]
		if sl == nil || sl.gen != it.runGen {
			return 0, true, nil // undefined globals read as zero
		}
		v := &sl.val
		if v.Valid == nil && v.Origin == nil && len(v.Bytes) == 8 {
			return binary.LittleEndian.Uint64(v.Bytes), true, nil
		}
		return 0, false, nil
	default:
		return 0, false, nil
	}
}

// eval is the general evaluator, retained for shadowed and non-scalar
// values; Values read from variables alias slot storage and must be
// consumed (or copied) before the slot is written again.
func (it *Interp) eval(e Expr, f *frame) (Value, error) {
	switch ex := e.(type) {
	case Const:
		return Scalar(ex.V), nil
	case Var:
		sl, ok := f.lookup(ex.Name)
		if !ok {
			return Value{}, fmt.Errorf("prog %s: undefined variable %q", it.p.Name, ex.Name)
		}
		return sl.val, nil
	case InputLen:
		return Scalar(uint64(len(it.input))), nil
	case InputRemaining:
		return Scalar(uint64(len(it.input) - it.inPos)), nil
	case Global:
		if sl := it.globals[ex.Name]; sl != nil && sl.gen == it.runGen {
			return sl.val, nil
		}
		return Scalar(0), nil
	case Bin:
		a, err := it.eval(ex.A, f)
		if err != nil {
			return Value{}, err
		}
		b, err := it.eval(ex.B, f)
		if err != nil {
			return Value{}, err
		}
		return applyBin(ex.Op, a, b)
	default:
		return Value{}, fmt.Errorf("prog %s: unknown expression %T", it.p.Name, e)
	}
}

func applyBin(op BinOp, a, b Value) (Value, error) {
	r, err := binScalar(op, a.Uint(), b.Uint())
	if err != nil {
		return Value{}, err
	}
	return combineScalar(r, a, b), nil
}

// binScalar is the scalar ALU shared by the tree-walker and the
// bytecode VM; keeping one implementation is what makes "same operator,
// same bits" a structural property rather than a test obligation.
func binScalar(op BinOp, x, y uint64) (uint64, error) {
	var r uint64
	switch op {
	case OpAdd:
		r = x + y
	case OpSub:
		r = x - y
	case OpMul:
		r = x * y
	case OpDiv:
		if y != 0 {
			r = x / y
		}
	case OpMod:
		if y != 0 {
			r = x % y
		}
	case OpAnd:
		r = x & y
	case OpOr:
		r = x | y
	case OpXor:
		r = x ^ y
	case OpShl:
		r = x << (y & 63)
	case OpShr:
		r = x >> (y & 63)
	case OpLt:
		r = b2u(x < y)
	case OpLe:
		r = b2u(x <= y)
	case OpEq:
		r = b2u(x == y)
	case OpNe:
		r = b2u(x != y)
	case OpGt:
		r = b2u(x > y)
	case OpGe:
		r = b2u(x >= y)
	default:
		return 0, fmt.Errorf("prog: unknown binary op %d", op)
	}
	return r, nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
