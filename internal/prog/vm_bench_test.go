package prog

// Benchmarks for the tentpole claim: the bytecode VM beats the
// tree-walking interpreter by >= 3x on interpreter-bound programs and
// allocates nothing in steady state. `make bench-vm` runs these; the
// htp-bench "vm" experiment reports the same comparison on the full
// corpus workloads.

import (
	"testing"

	"heaptherapy/internal/mem"
)

// benchSetup builds the pin workload plus a backend whose heap already
// holds the scratch buffer the program addresses through its input.
func benchSetup(b *testing.B, iters uint64) (*Program, HeapBackend, []byte) {
	b.Helper()
	p := pinProgram(iters)
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		b.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		b.Fatal(err)
	}
	setup := MustLink(&Program{
		Name: "bench-setup",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				Memset{Dst: V("p"), B: C(0), N: C(64)},
				Return{E: V("p")},
			}},
		},
	})
	it, err := New(setup, Config{Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	res, err := it.Run(nil)
	if err != nil || res.Crashed() {
		b.Fatalf("bench setup: %v / %v", err, res)
	}
	in := make([]byte, 8)
	for i := 0; i < 8; i++ {
		in[i] = byte(res.Returned.Uint() >> (8 * i))
	}
	return p, backend, in
}

func BenchmarkEnginesTree(b *testing.B) {
	p, backend, input := benchSetup(b, 256)
	it, err := New(p, Config{Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := it.Run(input); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEnginesVM(b *testing.B) {
	p, backend, input := benchSetup(b, 256)
	c, err := Compile(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: backend})
	if err != nil {
		b.Fatal(err)
	}
	var res Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := vm.RunReuse(&res, input); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompile measures the one-time translation cost amortized by
// the VM's speedup.
func BenchmarkCompile(b *testing.B) {
	p := pinProgram(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}
