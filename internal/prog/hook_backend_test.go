package prog

import (
	"bytes"
	"fmt"
	"testing"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
)

// hookProgram busy-loops for a known statement count so hook
// frequencies are predictable.
func hookProgram() *Program {
	return MustLink(&Program{
		Name: "hooked",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				Assign{Dst: "i", E: C(0)},
				While{Cond: Lt(V("i"), C(50)), Body: []Stmt{
					Store{Base: V("p"), Off: V("i"), Src: C(7), N: C(1)},
					Assign{Dst: "i", E: Add(V("i"), C(1))},
				}},
				Output{Base: V("p"), N: C(8)},
				FreeStmt{Ptr: V("p")},
			}},
		},
	})
}

// TestSetQuantumHook verifies the exported hook shim drives both
// engines: the hook fires between statements at the requested period,
// and clearing it stops the callbacks.
func TestSetQuantumHook(t *testing.T) {
	p := hookProgram()
	for _, engine := range AllEngines() {
		t.Run(engine.String(), func(t *testing.T) {
			space, err := mem.NewSpace(mem.Config{})
			if err != nil {
				t.Fatal(err)
			}
			backend, err := NewNativeBackend(space)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := NewExec(p, Config{Backend: backend, Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			calls := 0
			if !SetQuantumHook(ex, 10, func() { calls++ }) {
				t.Fatal("engine does not support quantum hooks")
			}
			res, err := ex.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			want := int(res.Steps / 10)
			if calls != want {
				t.Errorf("hook fired %d times over %d steps, want %d", calls, res.Steps, want)
			}
			if !SetQuantumHook(ex, 0, nil) {
				t.Fatal("clearing the hook failed")
			}
			space.Reset()
			if err := backend.Reset(); err != nil {
				t.Fatal(err)
			}
			calls = 0
			if _, err := ex.Run(nil); err != nil {
				t.Fatal(err)
			}
			if calls != 0 {
				t.Errorf("cleared hook still fired %d times", calls)
			}
		})
	}
}

// nonRunner is an Exec that is not one of the built-in engines.
type nonRunner struct{}

func (nonRunner) Run([]byte) (*Result, error) { return nil, nil }

func TestSetQuantumHookUnsupported(t *testing.T) {
	if SetQuantumHook(nonRunner{}, 8, func() {}) {
		t.Fatal("SetQuantumHook accepted an Exec without scheduling support")
	}
}

// TestNativeBackendOverPool runs the same allocator-agnostic program
// natively over the boundary-tag heap and the pool allocator: both
// must complete with identical output and step counts (addresses and
// cycle costs legitimately differ between allocators).
func TestNativeBackendOverPool(t *testing.T) {
	p := hookProgram()
	var outputs [][]byte
	var steps []uint64
	for _, kind := range []string{"heap", "pool"} {
		space, err := mem.NewSpace(mem.Config{})
		if err != nil {
			t.Fatal(err)
		}
		var backend *NativeBackend
		if kind == "heap" {
			backend, err = NewNativeBackend(space)
		} else {
			var pool *heapsim.PoolAllocator
			pool, err = heapsim.NewPool(space)
			if err == nil {
				backend, err = NewNativeBackendWithAllocator(space, pool)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		if kind == "pool" && backend.Heap() != nil {
			t.Error("Heap() over a pool allocator should be nil")
		}
		if backend.Allocator() == nil {
			t.Error("Allocator() returned nil")
		}
		ex, err := NewExec(p, Config{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ex.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, res.Output)
		steps = append(steps, res.Steps)

		// Reset and rerun: recycled must equal fresh.
		space.Reset()
		if err := backend.Reset(); err != nil {
			t.Fatal(err)
		}
		res2, err := ex.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res2.Output, res.Output) || res2.Steps != res.Steps {
			t.Errorf("%s: recycled run diverged from fresh", kind)
		}
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Errorf("outputs differ across allocators: %x vs %x", outputs[0], outputs[1])
	}
	if steps[0] != steps[1] {
		t.Errorf("steps differ across allocators: %d vs %d", steps[0], steps[1])
	}
}

func TestNewNativeBackendWithAllocatorNil(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNativeBackendWithAllocator(space, nil); err == nil {
		t.Fatal("nil allocator accepted")
	}
}

// fixedAlloc is a minimal Allocator without any Reset method.
type fixedAlloc struct{ next uint64 }

func (f *fixedAlloc) Malloc(size uint64) (uint64, error)     { f.next += 64; return f.next, nil }
func (f *fixedAlloc) Calloc(n, size uint64) (uint64, error)  { return f.Malloc(n * size) }
func (f *fixedAlloc) Realloc(p, size uint64) (uint64, error) { return f.Malloc(size) }
func (f *fixedAlloc) Memalign(a, s uint64) (uint64, error)   { return f.Malloc(s) }
func (f *fixedAlloc) Free(ptr uint64) error                  { return nil }
func (f *fixedAlloc) UsableSize(ptr uint64) (uint64, error)  { return 0, fmt.Errorf("unsupported") }

func TestNativeBackendResetUnsupported(t *testing.T) {
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewNativeBackendWithAllocator(space, &fixedAlloc{next: space.Base()})
	if err != nil {
		t.Fatal(err)
	}
	if err := backend.Reset(); err == nil {
		t.Fatal("Reset on a reset-less allocator should error")
	}
}
