// Package prog models the programs HeapTherapy+ protects: functions,
// call sites, loops, branches, and heap/memory operations, executed by
// a deterministic interpreter over the simulated heap.
//
// The paper instruments C programs with an LLVM pass and runs them
// natively (online) or under Valgrind (offline analysis). Here the same
// program AST runs against pluggable heap backends: the raw allocator
// (native execution), the shadow-memory analysis heap (offline patch
// generation), or the defended allocator (online protection). The
// interpreter maintains the thread-local calling-context value V with
// the save/restore discipline described in package encoding, so
// allocation-time CCIDs are bit-identical across backends — which is
// precisely what lets patches generated offline match buffers online.
package prog

import (
	"encoding/binary"
	"fmt"
)

// Value is a runtime value: a byte string with optional shadow state.
// Scalars (addresses, lengths, flags) are 8-byte little-endian values.
// In analysis mode, Valid carries one validity bit per data bit
// (V-bits, stored as a mask byte per data byte) and Origin carries the
// per-byte origin tag used to trace uninitialized data back to its
// allocation (Memcheck-style origin tracking).
type Value struct {
	// Bytes is the data.
	Bytes []byte
	// Valid holds a V-bit mask per byte (0xFF = fully initialized).
	// A nil Valid means fully valid: native and defended execution
	// never allocate shadow.
	Valid []byte
	// Origin holds a per-byte origin tag (0 = none). Origins are
	// allocated by the shadow heap and map to allocation sites.
	Origin []uint32
}

// Scalar builds a fully-valid 8-byte scalar value.
func Scalar(v uint64) Value {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return Value{Bytes: b}
}

// Uint returns the value's scalar interpretation: the first 8 bytes,
// little endian; missing bytes read as zero.
func (v Value) Uint() uint64 {
	if len(v.Bytes) >= 8 {
		return binary.LittleEndian.Uint64(v.Bytes)
	}
	var out uint64
	for i, b := range v.Bytes {
		out |= uint64(b) << (8 * i)
	}
	return out
}

// Len returns the byte length.
func (v Value) Len() int { return len(v.Bytes) }

// FullyValid reports whether every bit of the value is initialized.
func (v Value) FullyValid() bool {
	if v.Valid == nil {
		return true
	}
	for _, m := range v.Valid {
		if m != 0xFF {
			return false
		}
	}
	return true
}

// FirstInvalid returns the index of the first byte with any invalid
// bit, or -1 if fully valid.
func (v Value) FirstInvalid() int {
	if v.Valid == nil {
		return -1
	}
	for i, m := range v.Valid {
		if m != 0xFF {
			return i
		}
	}
	return -1
}

// InvalidOrigin returns the origin tag of the first invalid byte, or 0.
func (v Value) InvalidOrigin() uint32 {
	i := v.FirstInvalid()
	if i < 0 || v.Origin == nil || i >= len(v.Origin) {
		return 0
	}
	return v.Origin[i]
}

// Slice returns a copy of the value restricted to [off, off+n),
// preserving shadow state. Out-of-range portions are dropped.
func (v Value) Slice(off, n int) Value {
	if off < 0 || off >= len(v.Bytes) {
		return Value{}
	}
	end := off + n
	if end > len(v.Bytes) {
		end = len(v.Bytes)
	}
	out := Value{Bytes: append([]byte(nil), v.Bytes[off:end]...)}
	if v.Valid != nil && off < len(v.Valid) {
		ve := end
		if ve > len(v.Valid) {
			ve = len(v.Valid)
		}
		out.Valid = append([]byte(nil), v.Valid[off:ve]...)
		for len(out.Valid) < len(out.Bytes) {
			out.Valid = append(out.Valid, 0xFF)
		}
	}
	if v.Origin != nil && off < len(v.Origin) {
		oe := end
		if oe > len(v.Origin) {
			oe = len(v.Origin)
		}
		out.Origin = append([]uint32(nil), v.Origin[off:oe]...)
		for len(out.Origin) < len(out.Bytes) {
			out.Origin = append(out.Origin, 0)
		}
	}
	return out
}

// View returns the value restricted to [off, off+n) without copying:
// the result borrows v's backing arrays. Out-of-range portions are
// dropped. Backends treat missing Valid/Origin entries as fully valid
// with no origin, so truncated shadow slices preserve Slice's padding
// semantics. Callers must not mutate the result or use it after
// writing to v; the interpreter uses it to pass store operands to
// backends without a per-store allocation.
func (v Value) View(off, n int) Value {
	if off < 0 || off >= len(v.Bytes) {
		return Value{}
	}
	end := off + n
	if end > len(v.Bytes) {
		end = len(v.Bytes)
	}
	out := Value{Bytes: v.Bytes[off:end]}
	if v.Valid != nil && off < len(v.Valid) {
		ve := end
		if ve > len(v.Valid) {
			ve = len(v.Valid)
		}
		out.Valid = v.Valid[off:ve]
	}
	if v.Origin != nil && off < len(v.Origin) {
		oe := end
		if oe > len(v.Origin) {
			oe = len(v.Origin)
		}
		out.Origin = v.Origin[off:oe]
	}
	return out
}

// Clone deep-copies the value.
func (v Value) Clone() Value {
	out := Value{Bytes: append([]byte(nil), v.Bytes...)}
	if v.Valid != nil {
		out.Valid = append([]byte(nil), v.Valid...)
	}
	if v.Origin != nil {
		out.Origin = append([]uint32(nil), v.Origin...)
	}
	return out
}

// scalarShadow summarizes the shadow of the scalar (first 8) bytes:
// whether all their bits are valid and the origin of the first invalid
// byte. Scalar arithmetic propagates shadow at this granularity, which
// matches how Memcheck treats register values.
func (v Value) scalarShadow() (valid bool, origin uint32) {
	if v.Valid == nil {
		return true, 0
	}
	n := len(v.Valid)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if v.Valid[i] != 0xFF {
			o := uint32(0)
			if v.Origin != nil && i < len(v.Origin) {
				o = v.Origin[i]
			}
			return false, o
		}
	}
	return true, 0
}

// invalidScalar builds an 8-byte scalar marked fully invalid with the
// given origin; the bits carry the computed data so execution can
// continue past warnings (Valgrind's behaviour).
func invalidScalar(data uint64, origin uint32) Value {
	v := Scalar(data)
	v.Valid = make([]byte, 8)
	if origin != 0 {
		v.Origin = make([]uint32, 8)
		for i := range v.Origin {
			v.Origin[i] = origin
		}
	}
	return v
}

// combineScalar applies binary-operation shadow semantics: the result
// is valid only if both operands' scalar parts are valid; otherwise it
// inherits the first invalid operand's origin.
func combineScalar(result uint64, a, b Value) Value {
	av, ao := a.scalarShadow()
	bv, bo := b.scalarShadow()
	if av && bv {
		return Scalar(result)
	}
	origin := ao
	if av {
		origin = bo
	}
	return invalidScalar(result, origin)
}

func (v Value) String() string {
	if len(v.Bytes) <= 8 {
		return fmt.Sprintf("%#x", v.Uint())
	}
	return fmt.Sprintf("bytes[%d]", len(v.Bytes))
}
