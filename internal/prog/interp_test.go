package prog

import (
	"bytes"
	"strings"
	"testing"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
)

func nativeInterp(t *testing.T, p *Program, coder *encoding.Coder) *Interp {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	it, err := New(p, Config{Backend: backend, Coder: coder})
	if err != nil {
		t.Fatal(err)
	}
	return it
}

func run(t *testing.T, p *Program, input []byte) *Result {
	t.Helper()
	it := nativeInterp(t, p, nil)
	res, err := it.Run(input)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestLinkRejectsUndefinedCallee(t *testing.T) {
	p := &Program{
		Name:  "bad",
		Funcs: map[string]*Func{"main": {Body: []Stmt{Call{Callee: "ghost"}}}},
	}
	if err := Link(p); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("Link err = %v, want undefined-function error", err)
	}
}

func TestLinkRequiresEntry(t *testing.T) {
	p := &Program{Name: "noentry", Funcs: map[string]*Func{"helper": {}}}
	if err := Link(p); err == nil {
		t.Error("Link without main succeeded")
	}
}

func TestLinkBuildsGraph(t *testing.T) {
	p := MustLink(&Program{
		Name: "g",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Call{Callee: "work"},
			}},
			"work": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				FreeStmt{Ptr: V("p")},
			}},
		},
	})
	g := p.Graph()
	if g.NodeByName("malloc") == callgraph.InvalidNode {
		t.Fatal("malloc node missing from call graph")
	}
	if len(p.Targets()) != 1 {
		t.Fatalf("targets = %v, want [malloc]", p.Targets())
	}
	if _, err := g.SiteByLabel("main->work#0"); err != nil {
		t.Error("main->work site missing")
	}
	if _, err := g.SiteByLabel("work->malloc#0"); err != nil {
		t.Error("work->malloc site missing")
	}
}

func TestArithmeticAndOutput(t *testing.T) {
	p := MustLink(&Program{
		Name: "arith",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Assign{Dst: "x", E: C(6)},
				Assign{Dst: "y", E: Mul(V("x"), C(7))},
				OutputVar{Src: "y"},
			}},
		},
	})
	res := run(t, p, nil)
	if got := (Value{Bytes: res.Output}).Uint(); got != 42 {
		t.Errorf("output = %d, want 42", got)
	}
}

func TestHeapRoundTrip(t *testing.T) {
	p := MustLink(&Program{
		Name: "heap",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				StoreBytes{Base: V("p"), Data: []byte("hello heap")},
				Output{Base: V("p"), N: C(10)},
				FreeStmt{Ptr: V("p")},
			}},
		},
	})
	res := run(t, p, nil)
	if string(res.Output) != "hello heap" {
		t.Errorf("output = %q, want %q", res.Output, "hello heap")
	}
	if res.Allocs != 1 || res.Frees != 1 {
		t.Errorf("allocs/frees = %d/%d, want 1/1", res.Allocs, res.Frees)
	}
	if res.Crashed() {
		t.Errorf("unexpected fault: %v", res.Fault)
	}
}

func TestCallocMemalignRealloc(t *testing.T) {
	p := MustLink(&Program{
		Name: "allocfns",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "c", Fn: heapsim.FnCalloc, Size: C(8), N: C(4)},
				Output{Base: V("c"), N: C(32)}, // calloc'd: all zeros
				Alloc{Dst: "m", Fn: heapsim.FnMemalign, Size: C(100), Align: C(256)},
				Assign{Dst: "aligned", E: Bin{Op: OpMod, A: V("m"), B: C(256)}},
				OutputVar{Src: "aligned"},
				ReallocStmt{Dst: "c", Ptr: V("c"), Size: C(128)},
				FreeStmt{Ptr: V("c")},
				FreeStmt{Ptr: V("m")},
			}},
		},
	})
	res := run(t, p, nil)
	if len(res.Output) != 40 {
		t.Fatalf("output length = %d, want 40", len(res.Output))
	}
	for i := 0; i < 32; i++ {
		if res.Output[i] != 0 {
			t.Fatalf("calloc byte %d nonzero", i)
		}
	}
	if got := (Value{Bytes: res.Output[32:]}).Uint(); got != 0 {
		t.Errorf("memalign remainder = %d, want 0", got)
	}
}

func TestControlFlow(t *testing.T) {
	p := MustLink(&Program{
		Name: "flow",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "n", N: C(1)},
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "sum", E: C(0)},
				While{Cond: Lt(V("i"), Bin{Op: OpAnd, A: V("n"), B: C(0xFF)}), Body: []Stmt{
					Assign{Dst: "sum", E: Add(V("sum"), V("i"))},
					Assign{Dst: "i", E: Add(V("i"), C(1))},
				}},
				If{Cond: Gt(V("sum"), C(10)), Then: []Stmt{
					OutputVar{Src: "sum"},
				}, Else: []Stmt{
					Assign{Dst: "z", E: C(0)},
					OutputVar{Src: "z"},
				}},
			}},
		},
	})
	// n = 6: sum = 15 > 10.
	res := run(t, p, []byte{6})
	if got := (Value{Bytes: res.Output}).Uint(); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	// n = 3: sum = 3, else branch outputs 0.
	res = run(t, p, []byte{3})
	if got := (Value{Bytes: res.Output}).Uint(); got != 0 {
		t.Errorf("else output = %d, want 0", got)
	}
}

func TestFunctionCallsAndReturn(t *testing.T) {
	p := MustLink(&Program{
		Name: "calls",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Call{Dst: "r", Callee: "square", Args: []Expr{C(9)}},
				OutputVar{Src: "r"},
			}},
			"square": {Params: []string{"x"}, Body: []Stmt{
				Return{E: Mul(V("x"), V("x"))},
			}},
		},
	})
	res := run(t, p, nil)
	if got := (Value{Bytes: res.Output}).Uint(); got != 81 {
		t.Errorf("square(9) = %d, want 81", got)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	p := MustLink(&Program{
		Name: "inf",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "loop"}}},
			"loop": {Body: []Stmt{Call{Callee: "loop"}}},
		},
	})
	it := nativeInterp(t, p, nil)
	if _, err := it.Run(nil); err == nil || !strings.Contains(err.Error(), "depth") {
		t.Errorf("unbounded recursion err = %v, want depth limit", err)
	}
}

func TestStepLimit(t *testing.T) {
	p := MustLink(&Program{
		Name: "spin",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{While{Cond: C(1), Body: []Stmt{Nop{}}}}},
		},
	})
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	it, err := New(p, Config{Backend: backend, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := it.Run(nil); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("infinite loop err = %v, want step limit", err)
	}
}

func TestMemcpyAndMemset(t *testing.T) {
	p := MustLink(&Program{
		Name: "copy",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "a", Size: C(32)},
				Alloc{Dst: "b", Size: C(32)},
				Memset{Dst: V("a"), B: C(0x5A), N: C(32)},
				Memcpy{Dst: V("b"), Src: V("a"), N: C(32)},
				Output{Base: V("b"), N: C(32)},
			}},
		},
	})
	res := run(t, p, nil)
	for i, b := range res.Output {
		if b != 0x5A {
			t.Fatalf("byte %d = %#x, want 0x5A", i, b)
		}
	}
}

func TestOverflowFaultsNatively(t *testing.T) {
	// Writing far past a buffer eventually leaves the mapped arena or
	// the pages; either way the simulated process must crash rather
	// than the interpreter erroring out.
	p := MustLink(&Program{
		Name: "crash",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				StoreBytes{Base: V("p"), Off: C(100 * 1024 * 1024), Data: []byte{1}},
			}},
		},
	})
	res := run(t, p, nil)
	if !res.Crashed() {
		t.Fatal("wild store did not crash")
	}
	if !mem.IsFault(res.Fault) {
		t.Errorf("fault = %v, want memory fault", res.Fault)
	}
}

func TestDoubleFreeCrashesNatively(t *testing.T) {
	p := MustLink(&Program{
		Name: "dfree",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				FreeStmt{Ptr: V("p")},
				FreeStmt{Ptr: V("p")},
			}},
		},
	})
	res := run(t, p, nil)
	if !res.Crashed() {
		t.Fatal("double free did not crash")
	}
}

func TestReadInputClamps(t *testing.T) {
	p := MustLink(&Program{
		Name: "input",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "a", N: C(4)},
				ReadInput{Dst: "b", N: C(100)}, // only 2 left
				OutputVar{Src: "a"},
				OutputVar{Src: "b"},
				Assign{Dst: "rem", E: InputRemaining{}},
				OutputVar{Src: "rem"},
			}},
		},
	})
	res := run(t, p, []byte("abcdef"))
	if !bytes.Equal(res.Output[:6], []byte("abcdef")) {
		t.Errorf("output = %q, want abcdef prefix", res.Output)
	}
	if got := (Value{Bytes: res.Output[6:]}).Uint(); got != 0 {
		t.Errorf("remaining = %d, want 0", got)
	}
}

// ccidProgram has two distinct allocation contexts reaching malloc.
func ccidProgram() *Program {
	return MustLink(&Program{
		Name: "ccids",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Call{Callee: "pathA"},
				Call{Callee: "pathB"},
			}},
			"pathA": {Body: []Stmt{Call{Callee: "alloc16"}}},
			"pathB": {Body: []Stmt{Call{Callee: "alloc16"}}},
			"alloc16": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				FreeStmt{Ptr: V("p")},
			}},
		},
	})
}

// recordingBackend wraps a backend and records allocation CCIDs.
type recordingBackend struct {
	HeapBackend
	ccids []uint64
}

func (rb *recordingBackend) Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error) {
	rb.ccids = append(rb.ccids, ccid)
	return rb.HeapBackend.Alloc(fn, ccid, n, size, align)
}

// TestCCIDsDistinguishContexts runs the two-context program under every
// scheme and encoder and checks the two allocations get distinct CCIDs:
// the property code-less patching depends on.
func TestCCIDsDistinguishContexts(t *testing.T) {
	p := ccidProgram()
	for _, scheme := range encoding.AllSchemes() {
		for _, kind := range encoding.AllEncoders() {
			plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
			if err != nil {
				t.Fatal(err)
			}
			coder, err := encoding.NewCoder(kind, p.Graph(), plan)
			if err != nil {
				t.Fatal(err)
			}
			space, _ := mem.NewSpace(mem.Config{})
			native, _ := NewNativeBackend(space)
			rb := &recordingBackend{HeapBackend: native}
			it, err := New(p, Config{Backend: rb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := it.Run(nil); err != nil {
				t.Fatal(err)
			}
			if len(rb.ccids) != 2 {
				t.Fatalf("%v/%v: %d allocations, want 2", scheme, kind, len(rb.ccids))
			}
			if rb.ccids[0] == rb.ccids[1] {
				t.Errorf("%v/%v: both contexts got CCID %#x", scheme, kind, rb.ccids[0])
			}
		}
	}
}

// TestCCIDsStableAcrossRuns: the same context must yield the same CCID
// every run — offline-generated patches must match online allocations.
func TestCCIDsStableAcrossRuns(t *testing.T) {
	p := ccidProgram()
	plan, err := encoding.NewPlan(encoding.SchemeIncremental, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	var firstRun []uint64
	for i := 0; i < 3; i++ {
		space, _ := mem.NewSpace(mem.Config{})
		native, _ := NewNativeBackend(space)
		rb := &recordingBackend{HeapBackend: native}
		it, err := New(p, Config{Backend: rb, Coder: coder})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := it.Run(nil); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			firstRun = rb.ccids
			continue
		}
		for j := range firstRun {
			if rb.ccids[j] != firstRun[j] {
				t.Fatalf("run %d: ccid[%d] = %#x, want %#x", i, j, rb.ccids[j], firstRun[j])
			}
		}
	}
}

// TestEncUpdateCounts: pruned plans must execute fewer updates.
func TestEncUpdateCounts(t *testing.T) {
	p := ccidProgram()
	var prev uint64 = ^uint64(0)
	for _, scheme := range encoding.AllSchemes() {
		plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
		if err != nil {
			t.Fatal(err)
		}
		coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
		if err != nil {
			t.Fatal(err)
		}
		it := nativeInterp(t, p, coder)
		res, err := it.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.EncUpdates > prev {
			t.Errorf("%v executed %d updates > previous scheme's %d", scheme, res.EncUpdates, prev)
		}
		prev = res.EncUpdates
	}
}

func TestResultCycleAccounting(t *testing.T) {
	p := ccidProgram()
	it := nativeInterp(t, p, nil)
	res, err := it.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Error("Cycles = 0; cost model not applied")
	}
	if res.Steps == 0 {
		t.Error("Steps = 0")
	}
}

func TestRunIsReusable(t *testing.T) {
	p := MustLink(&Program{
		Name: "echo",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "x", N: InputLen{}},
				OutputVar{Src: "x"},
			}},
		},
	})
	it := nativeInterp(t, p, nil)
	for _, in := range []string{"first", "second", ""} {
		res, err := it.Run([]byte(in))
		if err != nil {
			t.Fatal(err)
		}
		if string(res.Output) != in {
			t.Errorf("echo(%q) = %q", in, res.Output)
		}
	}
}

func TestUnlinkedProgramRejected(t *testing.T) {
	p := &Program{Name: "raw", Funcs: map[string]*Func{"main": {}}}
	space, _ := mem.NewSpace(mem.Config{})
	backend, _ := NewNativeBackend(space)
	if _, err := New(p, Config{Backend: backend}); err == nil {
		t.Error("New accepted unlinked program")
	}
}

func TestCallArgumentMismatch(t *testing.T) {
	p := MustLink(&Program{
		Name: "argmismatch",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "f", Args: []Expr{C(1)}}}},
			"f":    {Params: []string{"a", "b"}, Body: []Stmt{Return{}}},
		},
	})
	it := nativeInterp(t, p, nil)
	if _, err := it.Run(nil); err == nil || !strings.Contains(err.Error(), "args") {
		t.Errorf("arg mismatch err = %v", err)
	}
}

func TestUndefinedVariable(t *testing.T) {
	p := MustLink(&Program{
		Name: "undef",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{OutputVar{Src: "ghost"}}},
		},
	})
	it := nativeInterp(t, p, nil)
	if _, err := it.Run(nil); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("undefined var err = %v", err)
	}
}

func TestStorePartialWidth(t *testing.T) {
	p := MustLink(&Program{
		Name: "width",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				Memset{Dst: V("p"), B: C(0xFF), N: C(16)},
				Store{Base: V("p"), Src: C(0x1122334455667788), N: C(2)},
				Output{Base: V("p"), N: C(4)},
			}},
		},
	})
	res := run(t, p, nil)
	want := []byte{0x88, 0x77, 0xFF, 0xFF}
	if !bytes.Equal(res.Output, want) {
		t.Errorf("memory = %x, want %x", res.Output, want)
	}
}
