package prog_test

// FuzzVMvsTree is the randomized arm of the differential suite: any
// program the textual front end accepts must behave bit-identically on
// the bytecode VM and the tree-walking interpreter, for any input
// bytes. Seeds cover the Table II corpus (via progtext.Print) plus
// hand-written sources that hit the compiler's trickier lowerings
// (operand check ordering, while-in-while, calls in conditions' arms,
// explicit-CCID allocations). `go test` replays the seeds;
// `go test -fuzz=FuzzVMvsTree ./internal/prog` explores.

import (
	"bytes"
	"testing"

	"heaptherapy/internal/mem"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/progtext"
	"heaptherapy/internal/vuln"
)

func FuzzVMvsTree(f *testing.F) {
	literals := []string{
		"func main {\n nop\n}\n",
		"func main {\n let x = inputlen\n let y = inputrem\n outputvar x\n outputvar y\n}\n",
		"func main {\n alloc p = malloc(64)\n store p, 7, 8\n load v, p, 8\n outputvar v\n free p\n}\n",
		"func main {\n alloc p = calloc(4, 8)\n memset p, 65, 32\n output p, 32\n free p\n}\n",
		"func main {\n let i = 0\n while (i < 10) {\n  let j = 0\n  while (j < 3) {\n   let j = (j + 1)\n  }\n  let i = (i + 1)\n }\n outputvar i\n}\n",
		"func main {\n input n, 1\n call r = f(n)\n outputvar r\n}\n\nfunc f(x) {\n if x {\n  call r = f((x - 1))\n  return (r + x)\n }\n return 0\n}\n",
		"func main {\n alloc p = malloc(16) ctx 48879\n realloc q = realloc(p, 64)\n free q\n}\n",
		"func main {\n let a = 1\n let r = (a / 0)\n let s = (a % 0)\n let t = (a << 200)\n outputvar r\n outputvar s\n outputvar t\n}\n",
		"func main {\n alloc p = memalign(64, 32)\n storevar p, p\n storebytes (p + 8), \"hi\"\n memcpy (p + 16), p, 10\n output (p + 8), 2\n free p\n}\n",
	}
	for _, src := range literals {
		f.Add(src, []byte{3})
	}
	for _, c := range vuln.Named() {
		f.Add(progtext.Print(c.Program), c.Attack)
		for _, b := range c.Benign {
			f.Add(progtext.Print(c.Program), b)
		}
	}
	f.Fuzz(func(t *testing.T, src string, input []byte) {
		p, err := progtext.Parse(src)
		if err != nil {
			return // not a program; parser fuzzing lives in progtext
		}
		// Bound runaway programs identically on both engines.
		base := prog.Config{MaxSteps: 200000, MaxDepth: 64}

		mkBackend := func() prog.HeapBackend {
			space, err := mem.NewSpace(mem.Config{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := prog.NewNativeBackend(space)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}

		tcfg := base
		tcfg.Backend = mkBackend()
		it, err := prog.New(p, tcfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		compiled, err := prog.Compile(p, nil)
		if err != nil {
			t.Fatalf("Compile accepted-by-parser program: %v", err)
		}
		vcfg := base
		vcfg.Backend = mkBackend()
		vm, err := prog.NewVM(compiled, vcfg)
		if err != nil {
			t.Fatalf("NewVM: %v", err)
		}
		// Tier-up threshold 1: the machine runs each input twice below,
		// once mostly cold and once on closure code, so any fuzz-found
		// divergence between the tiers also fails here.
		mcfg := base
		mcfg.Backend = mkBackend()
		mcfg.TierUp = 1
		mach, err := prog.NewMachine(compiled, mcfg)
		if err != nil {
			t.Fatalf("NewMachine: %v", err)
		}

		tr, terr := it.Run(input)
		vr, verr := vm.Run(input)
		check := func(engine string, vr *prog.Result, verr error) {
			if (terr != nil) != (verr != nil) {
				t.Fatalf("engines disagree on error: tree %v %s %v\n--- src ---\n%s", terr, engine, verr, src)
			}
			if terr != nil {
				if terr.Error() != verr.Error() {
					t.Fatalf("error text diverges:\ntree: %v\n%s:   %v\n--- src ---\n%s", terr, engine, verr, src)
				}
				return
			}
			if !bytes.Equal(tr.Output, vr.Output) {
				t.Fatalf("output diverges:\ntree: %x\n%s:   %x\n--- src ---\n%s", tr.Output, engine, vr.Output, src)
			}
			if (tr.Fault != nil) != (vr.Fault != nil) ||
				(tr.Fault != nil && tr.Fault.Error() != vr.Fault.Error()) {
				t.Fatalf("fault diverges:\ntree: %v\n%s:   %v\n--- src ---\n%s", tr.Fault, engine, vr.Fault, src)
			}
			if tr.Steps != vr.Steps || tr.Cycles != vr.Cycles || tr.InterpCycles != vr.InterpCycles ||
				tr.Allocs != vr.Allocs || tr.Frees != vr.Frees || tr.AllocsByFn != vr.AllocsByFn {
				t.Fatalf("statistics diverge:\ntree: %+v\n%s:   %+v\n--- src ---\n%s", tr, engine, vr, src)
			}
			if !bytes.Equal(tr.Returned.Bytes, vr.Returned.Bytes) {
				t.Fatalf("returned value diverges on %s\n--- src ---\n%s", engine, src)
			}
		}
		check("vm", vr, verr)
		// Round 1: mostly cold tier.
		mr, merr := mach.Run(input)
		check("compiled", mr, merr)
		// Round 2: replay the input on both engines' (identically
		// evolved) heaps; with threshold 1 the machine now executes
		// promoted closure code for every function it reached.
		tr, terr = it.Run(input)
		mr, merr = mach.Run(input)
		check("compiled", mr, merr)
	})
}
