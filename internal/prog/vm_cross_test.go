package prog_test

// Cross-package differential verification of the bytecode VM against
// the tree-walking interpreter over the analysis (shadow) and defense
// backends, driven by the Table II vulnerability corpus. These live in
// an external test package because shadow, defense, and vuln all
// import prog. The in-package suite (vm_test.go) covers the native
// backend, error paths, and the zero-allocation pin.

import (
	"bytes"
	"reflect"
	"testing"

	"heaptherapy/internal/defense"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/mem"
	"heaptherapy/internal/patch"
	"heaptherapy/internal/prog"
	"heaptherapy/internal/shadow"
	"heaptherapy/internal/vuln"
)

// sameRun requires two executions to be observationally identical.
func sameRun(t *testing.T, label string, tr, vr *prog.Result, terr, verr error) {
	t.Helper()
	if (terr != nil) != (verr != nil) {
		t.Fatalf("%s: tree err = %v, vm err = %v", label, terr, verr)
	}
	if terr != nil {
		if terr.Error() != verr.Error() {
			t.Fatalf("%s: error mismatch\ntree: %v\nvm:   %v", label, terr, verr)
		}
		return
	}
	if !bytes.Equal(tr.Output, vr.Output) {
		t.Errorf("%s: output mismatch\ntree: %x\nvm:   %x", label, tr.Output, vr.Output)
	}
	if !bytes.Equal(tr.Returned.Bytes, vr.Returned.Bytes) ||
		!bytes.Equal(tr.Returned.Valid, vr.Returned.Valid) ||
		!reflect.DeepEqual(tr.Returned.Origin, vr.Returned.Origin) {
		t.Errorf("%s: returned value mismatch\ntree: %+v\nvm:   %+v", label, tr.Returned, vr.Returned)
	}
	if (tr.Fault != nil) != (vr.Fault != nil) {
		t.Fatalf("%s: fault mismatch: tree %v vm %v", label, tr.Fault, vr.Fault)
	}
	if tr.Fault != nil && tr.Fault.Error() != vr.Fault.Error() {
		t.Errorf("%s: fault text mismatch\ntree: %v\nvm:   %v", label, tr.Fault, vr.Fault)
	}
	if tr.Steps != vr.Steps || tr.Cycles != vr.Cycles || tr.InterpCycles != vr.InterpCycles ||
		tr.EncUpdates != vr.EncUpdates || tr.Allocs != vr.Allocs || tr.Frees != vr.Frees ||
		tr.AllocsByFn != vr.AllocsByFn {
		t.Errorf("%s: statistics mismatch\ntree: %+v\nvm:   %+v", label, tr, vr)
	}
}

func corpusCoder(t *testing.T, p *prog.Program) *encoding.Coder {
	t.Helper()
	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	return coder
}

func newShadow(t *testing.T) *shadow.Backend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := shadow.New(space, shadow.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newDefense(t *testing.T, patches *patch.Set) *defense.Backend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := defense.NewBackend(space, defense.Config{Patches: patches})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestVMDifferentialShadow: under the analysis backend all three
// engines must record the exact same warning stream (type, addresses,
// access and allocation CCIDs, detail text) for every corpus case, on
// benign and attack inputs alike. The shadow backend observes
// CheckUse, so this also proves neither the VM nor the compiled tier
// elides use checks for it. The tier-up machine runs with a threshold
// of 2, so functions promote in the middle of the input sequence and
// later inputs execute closure code.
func TestVMDifferentialShadow(t *testing.T) {
	for _, c := range vuln.Named() {
		t.Run(c.Name, func(t *testing.T) {
			coder := corpusCoder(t, c.Program)
			inputs := append(append([][]byte{}, c.Benign...), c.Attack)

			tb := newShadow(t)
			it, err := prog.New(c.Program, prog.Config{Backend: tb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := prog.Compile(c.Program, coder)
			if err != nil {
				t.Fatal(err)
			}
			vb := newShadow(t)
			vm, err := prog.NewVM(compiled, prog.Config{Backend: vb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			mb := newShadow(t)
			m, err := prog.NewMachine(compiled, prog.Config{Backend: mb, Coder: coder, TierUp: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range inputs {
				tr, terr := it.Run(in)
				vr, verr := vm.Run(in)
				sameRun(t, c.Name, tr, vr, terr, verr)
				mr, merr := m.Run(in)
				sameRun(t, c.Name+"/compiled", tr, mr, terr, merr)
			}
			if tw, vw := tb.Warnings(), vb.Warnings(); !reflect.DeepEqual(tw, vw) {
				t.Errorf("warning streams diverge\ntree: %v\nvm:   %v", tw, vw)
			}
			if tw, mw := tb.Warnings(), mb.Warnings(); !reflect.DeepEqual(tw, mw) {
				t.Errorf("warning streams diverge\ntree:     %v\ncompiled: %v", tw, mw)
			}
			if tc, vc := tb.Cycles(), vb.Cycles(); tc != vc {
				t.Errorf("shadow cycles: tree %d vm %d", tc, vc)
			}
			if tc, mc := tb.Cycles(), mb.Cycles(); tc != mc {
				t.Errorf("shadow cycles: tree %d compiled %d", tc, mc)
			}
		})
	}
}

// TestVMDifferentialDefense closes the paper's loop with both engines:
// analyze the attack under shadow (tree engine), turn the warnings
// into patches, then run benign and attack inputs on patched defense
// backends and require identical results AND identical defense
// statistics — Lookups, PatchedAllocs, GuardPages, ZeroFills,
// DeferredFrees, evictions, all of it. Patched sites exercise the VM's
// patch-verdict inline caches with hits on every generation-stable
// allocation.
func TestVMDifferentialDefense(t *testing.T) {
	var sawPatched bool
	for _, c := range vuln.Named() {
		t.Run(c.Name, func(t *testing.T) {
			coder := corpusCoder(t, c.Program)

			// Offline analysis pass on the reference engine.
			sb := newShadow(t)
			it, err := prog.New(c.Program, prog.Config{Backend: sb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := it.Run(c.Attack); err != nil {
				t.Fatalf("analysis run: %v", err)
			}
			patches := patch.NewSet()
			for _, w := range sb.Warnings() {
				patches.Add(w.Patch())
			}

			inputs := append(append([][]byte{}, c.Benign...), c.Attack)

			tb := newDefense(t, patches)
			tit, err := prog.New(c.Program, prog.Config{Backend: tb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			compiled, err := prog.Compile(c.Program, coder)
			if err != nil {
				t.Fatal(err)
			}
			vb := newDefense(t, patches)
			vm, err := prog.NewVM(compiled, prog.Config{Backend: vb, Coder: coder})
			if err != nil {
				t.Fatal(err)
			}
			mbk := newDefense(t, patches)
			m, err := prog.NewMachine(compiled, prog.Config{Backend: mbk, Coder: coder, TierUp: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, in := range inputs {
				tr, terr := tit.Run(in)
				vr, verr := vm.Run(in)
				sameRun(t, c.Name, tr, vr, terr, verr)
				mr, merr := m.Run(in)
				sameRun(t, c.Name+"/compiled", tr, mr, terr, merr)
			}
			ts, vs := tb.Defender().Stats(), vb.Defender().Stats()
			if ts != vs {
				t.Errorf("defense stats diverge\ntree: %+v\nvm:   %+v", ts, vs)
			}
			if ms := mbk.Defender().Stats(); ts != ms {
				t.Errorf("defense stats diverge\ntree:     %+v\ncompiled: %+v", ts, ms)
			}
			if tc, vc := tb.Cycles(), vb.Cycles(); tc != vc {
				t.Errorf("defense cycles: tree %d vm %d", tc, vc)
			}
			if tc, mc := tb.Cycles(), mbk.Cycles(); tc != mc {
				t.Errorf("defense cycles: tree %d compiled %d", tc, mc)
			}
			if ts.PatchedAllocs > 0 {
				sawPatched = true
			}

			// The VM's verdict inline caches must agree with the
			// defender's own alloc-time classification — and so must
			// the compiled tier's, which shares the cache storage but
			// bakes the lookup into closures.
			var icPatched uint64
			for _, s := range vm.SiteProfile() {
				icPatched += s.PatchedAllocs
			}
			if icPatched != vs.PatchedAllocs {
				t.Errorf("inline-cache patched count %d != defender PatchedAllocs %d", icPatched, vs.PatchedAllocs)
			}
			var mcPatched uint64
			for _, s := range m.SiteProfile() {
				mcPatched += s.PatchedAllocs
			}
			if want := mbk.Defender().Stats().PatchedAllocs; mcPatched != want {
				t.Errorf("compiled inline-cache patched count %d != defender PatchedAllocs %d", mcPatched, want)
			}
		})
	}
	if !sawPatched {
		t.Error("no corpus case produced a patched allocation; verdict caches untested")
	}
}
