package prog

// The bytecode compiler. Compile lowers a linked Program's AST once
// into a flat instruction stream executed by the register VM (vm.go):
//
//   - every function body becomes a contiguous run of fixed-size
//     instructions in one shared []instr, with If/While lowered to
//     conditional branches and resolved absolute jump targets;
//   - frame variables become register indices assigned at compile time
//     (params first, then locals in first-use order, then expression
//     temporaries), so the per-call map[string]Value disappears;
//   - constants are interned into a pool of immutable scalar Values;
//   - the hot statement forms are superinstructions: opAlloc fuses the
//     encoding update, allocation counters, and the backend call;
//     opLoad/opStore fuse address formation, use-point checks, and the
//     memory operation; opCall/opRet fuse the V save/restore discipline
//     with frame push/pop — one dispatch where the tree-walker pays
//     three to five interface dispatches;
//   - call/alloc/realloc sites carry metadata records with their
//     encoding update precompiled (encoding.Coder.CompileSite), so no
//     plan lookup happens at run time.
//
// The compiled form is immutable and goroutine-safe: one Compiled can
// back any number of VMs (the fleet shares one across workers). All
// mutable state lives in the VM.
//
// Equivalence contract: for every program the VM must be bit-identical
// to the tree-walker — outputs, Result fields, heap and defense
// statistics, fault addresses, crash errors, and cycle counts — for
// every run that produces a Result. The one sanctioned divergence is
// invisible in results: expression operands are evaluated by discrete
// instructions before a statement's superinstruction runs, so when a
// MALFORMED program aborts with an undefined-variable error mid-
// statement, backend-visible no-result side effects (a shadow warning
// from a CheckUse that the tree-walker had already issued) may differ.
// Aborted runs return no Result on either engine, and error ORDER is
// preserved (opCheckVar pins each variable's definedness check at its
// tree evaluation position), so the divergence is unobservable through
// the Run API. fuzz_test.go hunts for violations of this contract.

import (
	"fmt"
	"math"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
)

// opcode enumerates VM instructions.
type opcode uint8

const (
	opNop opcode = iota
	// Data movement and arithmetic.
	opLoadK     // dst = consts[a']
	opMove      // dst = regs[a] (deep copy)
	opBin       // dst = regs/consts[a] <bop> regs/consts[b]
	opInputLen  // dst = len(input)
	opInputRem  // dst = len(input) - inPos
	opGlobalGet // dst = globals[aux] (undefined reads 0)
	opGlobalSet // globals[aux] = operand a
	opCheckVar  // error if regs[a] is undefined (eval-order pin)
	// Control flow.
	opJump // pc = aux
	opBr   // CheckUse(a, control-flow); if a == 0 then pc = aux
	opCall // call calls[aux]
	opRet  // return operand a
	opRetVoid
	// Heap and memory superinstructions.
	opAlloc   // allocs[aux]: fused encoding update + counters + backend.Alloc
	opRealloc // allocs[aux] with the realloc shape
	opFree    // CheckUse(a, address); backend.Free
	opLoad    // dst = mem[a+b .. c] (fused addr check + load-into-register)
	opStore   // mem[a+b] = first min(dst',8) bytes of c
	opStoreVar
	opStoreBytes // mem[a+b] = datas[aux]
	opMemcpy     // memcpy(a, b, c)
	opMemset     // memset(a, b, c)
	opReadInput  // dst = up to a bytes of input
	opOutput     // emit mem[a+b .. c]
	opOutputVar  // emit regs[c]
)

// opndNone marks an absent optional operand (e.g. a nil Off).
const opndNone = int32(math.MinInt32)

// instr is one fixed-size VM instruction. Operand slots a, b, c (and
// dst where noted) address the register file when >= 0 and the
// constant pool as ^v when negative; opndNone means absent. aux is
// opcode-specific: a jump target, a record index, or a pool index.
// tick marks the first instruction of a statement (and each loop
// iteration's condition head): it charges CycStmt, counts a step, and
// runs the scheduling quantum — exactly the tree-walker's tick.
type instr struct {
	op   opcode
	tick bool
	bop  BinOp
	dst  int32 // destination register; opStore reuses it as the N operand
	a    int32
	b    int32
	c    int32
	aux  int32
}

// vmFunc is the compiled form of one function.
type vmFunc struct {
	name     string
	entry    int32
	nregs    int32
	nparams  int32
	regNames []string // register index -> variable name ("" for temps)
	prologue bool     // body contains an instrumented site (CycEncPrologue)
}

// callRec is the static metadata of one call site.
type callRec struct {
	fnIdx  int32
	dst    int32   // caller register for the return value, or opndNone
	args   []int32 // caller-frame operands, in evaluation order
	upd    encoding.SiteUpdate
	ic     int32 // inline-cache slot
	siteID callgraph.SiteID
}

// allocRec is the static metadata of one allocation or realloc site.
type allocRec struct {
	fn      heapsim.AllocFn // lookup/alloc API (FnRealloc for reallocs)
	dst     int32
	ptr     int32 // realloc only
	size    int32
	n       int32 // calloc count operand (constant 1 when absent)
	align   int32 // alignment operand (constant 0 when absent)
	ccid    int32 // explicit CCID operand, or opndNone
	byFn    heapsim.AllocFn
	upd     encoding.SiteUpdate
	ic      int32
	siteID  callgraph.SiteID
	realloc bool
}

// Compiled is an immutable compiled program: share one across any
// number of VMs (and goroutines — nothing here is written after
// Compile returns).
type Compiled struct {
	p     *Program
	coder *encoding.Coder

	code   []instr
	consts []Value  // interned scalar constants (never mutated)
	constU []uint64 // parallel scalar view of consts
	datas  []Value  // StoreBytes payloads (borrow the AST's bytes)
	funcs  []vmFunc
	calls  []callRec
	allocs []allocRec

	globalNames []string

	icCount   int32
	encCycles uint64 // cost of one coder-driven encoding update
}

// Program returns the source program.
func (c *Compiled) Program() *Program { return c.p }

// Coder returns the coder the program was compiled against (may be
// nil); a VM over this Compiled must be configured with the same one.
func (c *Compiled) Coder() *encoding.Coder { return c.coder }

// NumInstrs returns the flat instruction count (for tests and stats).
func (c *Compiled) NumInstrs() int { return len(c.code) }

// Compile lowers a linked program for the given coder (nil compiles it
// uninstrumented, like running the tree-walker with Config.Coder nil).
// The coder is baked in because site updates are resolved to constants
// at compile time.
func Compile(p *Program, coder *encoding.Coder) (*Compiled, error) {
	if p.graph == nil {
		return nil, fmt.Errorf("prog %s: program is not linked", p.Name)
	}
	c := &compiler{
		out:       &Compiled{p: p, coder: coder},
		constIdx:  make(map[uint64]int32),
		globalIdx: make(map[string]int32),
		funcIdx:   make(map[string]int32),
	}
	if coder != nil {
		c.out.encCycles = CycEncUpdateAdditive
		if coder.Kind() == encoding.EncoderPCC {
			c.out.encCycles = CycEncUpdatePCC
		}
	}

	// Deterministic function order: entry first (mirroring Link's node
	// numbering), the rest sorted.
	names := sortedFuncNames(p)
	for i, name := range names {
		c.funcIdx[name] = int32(i)
	}
	for _, name := range names {
		f := p.Funcs[name]
		prologue := coder != nil && bodyHasInstrumentedSite(f.Body, coder)
		if err := c.compileFunc(f, prologue); err != nil {
			return nil, err
		}
	}
	return c.out, nil
}

// sortedFuncNames returns the entry function first, then the remaining
// functions in sorted order (the same shape Link uses).
func sortedFuncNames(p *Program) []string {
	names := make([]string, 0, len(p.Funcs))
	names = append(names, p.Entry)
	rest := make([]string, 0, len(p.Funcs)-1)
	for name := range p.Funcs {
		if name != p.Entry {
			rest = append(rest, name)
		}
	}
	sortStrings(rest)
	return append(names, rest...)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// compiler holds cross-function compile state.
type compiler struct {
	out       *Compiled
	constIdx  map[uint64]int32
	globalIdx map[string]int32
	funcIdx   map[string]int32

	// Per-function state.
	fn       *vmFunc
	regIdx   map[string]int32
	tempBase int32
	curTemp  int32
	maxTemp  int32
}

// konst interns a scalar constant and returns its operand encoding.
func (c *compiler) konst(v uint64) int32 {
	if idx, ok := c.constIdx[v]; ok {
		return ^idx
	}
	idx := int32(len(c.out.consts))
	c.out.consts = append(c.out.consts, Scalar(v))
	c.out.constU = append(c.out.constU, v)
	c.constIdx[v] = idx
	return ^idx
}

// global interns a global-variable name.
func (c *compiler) global(name string) int32 {
	if idx, ok := c.globalIdx[name]; ok {
		return idx
	}
	idx := int32(len(c.out.globalNames))
	c.out.globalNames = append(c.out.globalNames, name)
	c.globalIdx[name] = idx
	return idx
}

// reg returns the register of a named variable, allocating on first
// use.
func (c *compiler) reg(name string) int32 {
	if idx, ok := c.regIdx[name]; ok {
		return idx
	}
	idx := int32(len(c.fn.regNames))
	c.fn.regNames = append(c.fn.regNames, name)
	c.regIdx[name] = idx
	return idx
}

// temp allocates an expression temporary; temporaries are recycled at
// every statement boundary (and never live across one).
func (c *compiler) temp() int32 {
	idx := c.tempBase + c.curTemp
	c.curTemp++
	if c.curTemp > c.maxTemp {
		c.maxTemp = c.curTemp
	}
	return idx
}

// emit appends an instruction and returns its index.
func (c *compiler) emit(ins instr) int32 {
	c.out.code = append(c.out.code, ins)
	return int32(len(c.out.code) - 1)
}

func (c *compiler) newIC() int32 {
	ic := c.out.icCount
	c.out.icCount++
	return ic
}

// compileFunc lowers one function body.
func (c *compiler) compileFunc(f *Func, prologue bool) error {
	c.out.funcs = append(c.out.funcs, vmFunc{
		name:     f.Name,
		entry:    int32(len(c.out.code)),
		nparams:  int32(len(f.Params)),
		prologue: prologue,
	})
	c.fn = &c.out.funcs[len(c.out.funcs)-1]
	c.regIdx = make(map[string]int32)
	for _, p := range f.Params {
		c.reg(p)
	}
	// Pre-walk so every named variable sits below the temp area.
	collectVars(c, f.Body)
	c.tempBase = int32(len(c.fn.regNames))
	c.maxTemp = 0
	if err := c.compileBody(f.Body); err != nil {
		return err
	}
	// Falling off the end returns void without a tick, exactly like the
	// tree-walker's execBlock running out of statements.
	c.emit(instr{op: opRetVoid, a: opndNone})
	c.fn.nregs = c.tempBase + c.maxTemp
	// Temporaries get placeholder names: they are always defined before
	// use by construction, so these never reach an error message.
	for i := c.tempBase; i < c.fn.nregs; i++ {
		c.fn.regNames = append(c.fn.regNames, "")
	}
	c.fn = nil
	return nil
}

// collectVars pre-registers every named variable in body, in
// deterministic first-appearance order.
func collectVars(c *compiler, body []Stmt) {
	var expr func(e Expr)
	expr = func(e Expr) {
		switch ex := e.(type) {
		case Var:
			c.reg(ex.Name)
		case Bin:
			expr(ex.A)
			expr(ex.B)
		}
	}
	opt := func(e Expr) {
		if e != nil {
			expr(e)
		}
	}
	for _, s := range body {
		switch st := s.(type) {
		case Assign:
			expr(st.E)
			c.reg(st.Dst)
		case SetGlobal:
			expr(st.E)
		case Alloc:
			expr(st.Size)
			opt(st.N)
			opt(st.Align)
			opt(st.CCID)
			c.reg(st.Dst)
		case ReallocStmt:
			expr(st.Ptr)
			expr(st.Size)
			opt(st.CCID)
			c.reg(st.Dst)
		case FreeStmt:
			expr(st.Ptr)
		case Load:
			expr(st.Base)
			opt(st.Off)
			expr(st.N)
			c.reg(st.Dst)
		case Store:
			expr(st.Base)
			opt(st.Off)
			expr(st.Src)
			opt(st.N)
		case StoreVar:
			expr(st.Base)
			opt(st.Off)
			c.reg(st.Src)
		case StoreBytes:
			expr(st.Base)
			opt(st.Off)
		case Memcpy:
			expr(st.Dst)
			expr(st.Src)
			expr(st.N)
		case Memset:
			expr(st.Dst)
			expr(st.B)
			expr(st.N)
		case ReadInput:
			expr(st.N)
			c.reg(st.Dst)
		case Output:
			expr(st.Base)
			opt(st.Off)
			expr(st.N)
		case OutputVar:
			c.reg(st.Src)
		case If:
			expr(st.Cond)
			collectVars(c, st.Then)
			collectVars(c, st.Else)
		case While:
			expr(st.Cond)
			collectVars(c, st.Body)
		case Call:
			for _, a := range st.Args {
				expr(a)
			}
			if st.Dst != "" {
				c.reg(st.Dst)
			}
		case Return:
			opt(st.E)
		}
	}
}

// opnds compiles a statement's operand expressions in evaluation
// order. Leaf operands (constants, variables) become direct operand
// encodings consumed by the superinstruction; compound operands are
// materialized into temporaries by discrete instructions. Because the
// tree-walker checks a variable's definedness the moment it evaluates
// it, any pending variable operands are pinned with opCheckVar before
// a later compound operand's instructions run — preserving the exact
// error order for malformed programs at zero cost to well-formed hot
// paths (leaf-only statements emit a single superinstruction).
type opnds struct {
	c       *compiler
	pending []int32
}

func (o *opnds) operand(e Expr) (int32, error) {
	switch ex := e.(type) {
	case Const:
		return o.c.konst(ex.V), nil
	case Var:
		r := o.c.reg(ex.Name)
		o.pending = append(o.pending, r)
		return r, nil
	default:
		o.flush()
		t := o.c.temp()
		if err := o.c.compileExprTo(t, e); err != nil {
			return 0, err
		}
		return t, nil
	}
}

// optional compiles a possibly-nil operand; nil yields the fallback
// constant (which evaluation-order-wise matches the tree-walker's
// "absent means default, unevaluated" handling, since constants are
// effect-free).
func (o *opnds) optional(e Expr, fallback uint64) (int32, error) {
	if e == nil {
		return o.c.konst(fallback), nil
	}
	return o.operand(e)
}

func (o *opnds) flush() {
	for _, r := range o.pending {
		o.c.emit(instr{op: opCheckVar, a: r, dst: opndNone, b: opndNone, c: opndNone})
	}
	o.pending = o.pending[:0]
}

// compileExprTo lowers an expression into a destination register.
func (c *compiler) compileExprTo(dst int32, e Expr) error {
	switch ex := e.(type) {
	case Const:
		c.emit(instr{op: opLoadK, dst: dst, a: c.konst(ex.V), b: opndNone, c: opndNone})
	case Var:
		c.emit(instr{op: opMove, dst: dst, a: c.reg(ex.Name), b: opndNone, c: opndNone})
	case InputLen:
		c.emit(instr{op: opInputLen, dst: dst, a: opndNone, b: opndNone, c: opndNone})
	case InputRemaining:
		c.emit(instr{op: opInputRem, dst: dst, a: opndNone, b: opndNone, c: opndNone})
	case Global:
		c.emit(instr{op: opGlobalGet, dst: dst, aux: c.global(ex.Name), a: opndNone, b: opndNone, c: opndNone})
	case Bin:
		oc := opnds{c: c}
		a, err := oc.operand(ex.A)
		if err != nil {
			return err
		}
		b, err := oc.operand(ex.B)
		if err != nil {
			return err
		}
		// Unknown operators are compiled through and rejected by the
		// runtime ALU with the tree-walker's exact error, so dead
		// malformed code behaves identically on both engines.
		c.emit(instr{op: opBin, dst: dst, a: a, b: b, c: opndNone, bop: ex.Op})
	default:
		return fmt.Errorf("prog %s: unknown expression %T", c.out.p.Name, e)
	}
	return nil
}

// compileBody lowers a statement list.
func (c *compiler) compileBody(body []Stmt) error {
	for _, s := range body {
		if err := c.compileStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) compileStmt(s Stmt) error {
	stmtStart := int32(len(c.out.code))
	c.curTemp = 0
	if err := c.compileStmtInner(s); err != nil {
		return err
	}
	// The first instruction of the statement carries the tick (every
	// statement emits at least one instruction).
	c.out.code[stmtStart].tick = true
	return nil
}

func (c *compiler) compileStmtInner(s Stmt) error {
	switch st := s.(type) {
	case Nop:
		c.emit(instr{op: opNop, dst: opndNone, a: opndNone, b: opndNone, c: opndNone})

	case Assign:
		return c.compileExprTo(c.reg(st.Dst), st.E)

	case SetGlobal:
		oc := opnds{c: c}
		src, err := oc.operand(st.E)
		if err != nil {
			return err
		}
		c.emit(instr{op: opGlobalSet, aux: c.global(st.Dst), a: src, dst: opndNone, b: opndNone, c: opndNone})

	case Alloc:
		oc := opnds{c: c}
		size, err := oc.operand(st.Size)
		if err != nil {
			return err
		}
		n, err := oc.optional(st.N, 1)
		if err != nil {
			return err
		}
		align, err := oc.optional(st.Align, 0)
		if err != nil {
			return err
		}
		ccid := opndNone
		if st.CCID != nil {
			if ccid, err = oc.operand(st.CCID); err != nil {
				return err
			}
		}
		rec := allocRec{
			fn: st.Fn, byFn: st.Fn, dst: c.reg(st.Dst), ptr: opndNone,
			size: size, n: n, align: align, ccid: ccid,
			siteID: st.site, ic: c.newIC(),
		}
		if c.out.coder != nil {
			rec.upd = c.out.coder.CompileSite(st.site)
		}
		c.out.allocs = append(c.out.allocs, rec)
		c.emit(instr{op: opAlloc, aux: int32(len(c.out.allocs) - 1), dst: opndNone, a: opndNone, b: opndNone, c: opndNone})

	case ReallocStmt:
		oc := opnds{c: c}
		ptr, err := oc.operand(st.Ptr)
		if err != nil {
			return err
		}
		size, err := oc.operand(st.Size)
		if err != nil {
			return err
		}
		ccid := opndNone
		if st.CCID != nil {
			if ccid, err = oc.operand(st.CCID); err != nil {
				return err
			}
		}
		rec := allocRec{
			fn: heapsim.FnRealloc, byFn: heapsim.FnRealloc, dst: c.reg(st.Dst),
			ptr: ptr, size: size, n: c.konst(1), align: c.konst(0), ccid: ccid,
			siteID: st.site, ic: c.newIC(), realloc: true,
		}
		if c.out.coder != nil {
			rec.upd = c.out.coder.CompileSite(st.site)
		}
		c.out.allocs = append(c.out.allocs, rec)
		c.emit(instr{op: opRealloc, aux: int32(len(c.out.allocs) - 1), dst: opndNone, a: opndNone, b: opndNone, c: opndNone})

	case FreeStmt:
		oc := opnds{c: c}
		ptr, err := oc.operand(st.Ptr)
		if err != nil {
			return err
		}
		c.emit(instr{op: opFree, a: ptr, dst: opndNone, b: opndNone, c: opndNone})

	case Load:
		oc := opnds{c: c}
		base, off, err := c.addr(&oc, st.Base, st.Off)
		if err != nil {
			return err
		}
		n, err := oc.operand(st.N)
		if err != nil {
			return err
		}
		c.emit(instr{op: opLoad, dst: c.reg(st.Dst), a: base, b: off, c: n})

	case Store:
		oc := opnds{c: c}
		base, off, err := c.addr(&oc, st.Base, st.Off)
		if err != nil {
			return err
		}
		src, err := oc.operand(st.Src)
		if err != nil {
			return err
		}
		n := opndNone // absent N stores the full 8 scalar bytes
		if st.N != nil {
			if n, err = oc.operand(st.N); err != nil {
				return err
			}
		}
		c.emit(instr{op: opStore, a: base, b: off, c: src, dst: n})

	case StoreVar:
		oc := opnds{c: c}
		base, off, err := c.addr(&oc, st.Base, st.Off)
		if err != nil {
			return err
		}
		c.emit(instr{op: opStoreVar, a: base, b: off, c: c.reg(st.Src), dst: opndNone})

	case StoreBytes:
		oc := opnds{c: c}
		base, off, err := c.addr(&oc, st.Base, st.Off)
		if err != nil {
			return err
		}
		c.out.datas = append(c.out.datas, Value{Bytes: st.Data})
		c.emit(instr{op: opStoreBytes, a: base, b: off, aux: int32(len(c.out.datas) - 1), dst: opndNone, c: opndNone})

	case Memcpy:
		oc := opnds{c: c}
		dst, err := oc.operand(st.Dst)
		if err != nil {
			return err
		}
		src, err := oc.operand(st.Src)
		if err != nil {
			return err
		}
		n, err := oc.operand(st.N)
		if err != nil {
			return err
		}
		c.emit(instr{op: opMemcpy, a: dst, b: src, c: n, dst: opndNone})

	case Memset:
		oc := opnds{c: c}
		dst, err := oc.operand(st.Dst)
		if err != nil {
			return err
		}
		b, err := oc.operand(st.B)
		if err != nil {
			return err
		}
		n, err := oc.operand(st.N)
		if err != nil {
			return err
		}
		c.emit(instr{op: opMemset, a: dst, b: b, c: n, dst: opndNone})

	case ReadInput:
		oc := opnds{c: c}
		n, err := oc.operand(st.N)
		if err != nil {
			return err
		}
		c.emit(instr{op: opReadInput, dst: c.reg(st.Dst), a: n, b: opndNone, c: opndNone})

	case Output:
		oc := opnds{c: c}
		base, off, err := c.addr(&oc, st.Base, st.Off)
		if err != nil {
			return err
		}
		n, err := oc.operand(st.N)
		if err != nil {
			return err
		}
		c.emit(instr{op: opOutput, a: base, b: off, c: n, dst: opndNone})

	case OutputVar:
		c.emit(instr{op: opOutputVar, c: c.reg(st.Src), dst: opndNone, a: opndNone, b: opndNone})

	case If:
		oc := opnds{c: c}
		cond, err := oc.operand(st.Cond)
		if err != nil {
			return err
		}
		br := c.emit(instr{op: opBr, a: cond, dst: opndNone, b: opndNone, c: opndNone})
		if err := c.compileBody(st.Then); err != nil {
			return err
		}
		if len(st.Else) == 0 {
			c.out.code[br].aux = int32(len(c.out.code))
			return nil
		}
		j := c.emit(instr{op: opJump, dst: opndNone, a: opndNone, b: opndNone, c: opndNone})
		c.out.code[br].aux = int32(len(c.out.code))
		if err := c.compileBody(st.Else); err != nil {
			return err
		}
		c.out.code[j].aux = int32(len(c.out.code))

	case While:
		// The statement tick (set by compileStmt on this opNop) models
		// execBlock's per-statement tick; each iteration then ticks
		// again at the condition head, matching the tree-walker's loop.
		c.emit(instr{op: opNop, dst: opndNone, a: opndNone, b: opndNone, c: opndNone})
		head := int32(len(c.out.code))
		c.curTemp = 0
		oc := opnds{c: c}
		cond, err := oc.operand(st.Cond)
		if err != nil {
			return err
		}
		br := c.emit(instr{op: opBr, a: cond, dst: opndNone, b: opndNone, c: opndNone})
		c.out.code[head].tick = true
		if err := c.compileBody(st.Body); err != nil {
			return err
		}
		c.emit(instr{op: opJump, aux: head, dst: opndNone, a: opndNone, b: opndNone, c: opndNone})
		c.out.code[br].aux = int32(len(c.out.code))

	case Call:
		oc := opnds{c: c}
		args := make([]int32, len(st.Args))
		for i, a := range st.Args {
			opnd, err := oc.operand(a)
			if err != nil {
				return err
			}
			args[i] = opnd
		}
		dst := opndNone
		if st.Dst != "" {
			dst = c.reg(st.Dst)
		}
		rec := callRec{
			fnIdx: c.funcIdx[st.Callee], dst: dst, args: args,
			siteID: st.site, ic: c.newIC(),
		}
		if c.out.coder != nil {
			rec.upd = c.out.coder.CompileSite(st.site)
		}
		c.out.calls = append(c.out.calls, rec)
		c.emit(instr{op: opCall, aux: int32(len(c.out.calls) - 1), dst: opndNone, a: opndNone, b: opndNone, c: opndNone})

	case Return:
		if st.E == nil {
			c.emit(instr{op: opRetVoid, a: opndNone, dst: opndNone, b: opndNone, c: opndNone})
			return nil
		}
		oc := opnds{c: c}
		v, err := oc.operand(st.E)
		if err != nil {
			return err
		}
		c.emit(instr{op: opRet, a: v, dst: opndNone, b: opndNone, c: opndNone})

	default:
		return fmt.Errorf("prog %s: unknown statement %T", c.out.p.Name, s)
	}
	return nil
}

// addr compiles the Base+Off operand pair shared by every addressed
// statement; a nil Off compiles to opndNone so the VM issues exactly
// one use-point check, like the tree-walker's evalAddr.
func (c *compiler) addr(oc *opnds, base, off Expr) (int32, int32, error) {
	b, err := oc.operand(base)
	if err != nil {
		return 0, 0, err
	}
	if off == nil {
		return b, opndNone, nil
	}
	o, err := oc.operand(off)
	if err != nil {
		return 0, 0, err
	}
	return b, o, nil
}
