package prog

// The bytecode VM. It executes the flat instruction stream produced by
// Compile (compile.go) with one tight dispatch loop over fixed-size
// instructions, a register file per frame, and a frame free list, so
// steady-state execution allocates nothing: registers own their Value
// buffers and every write reuses capacity, frames are recycled by
// depth, and RunReuse recycles the Result's buffers too.
//
// The VM is the fast engine behind the Engine seam (engine.go); the
// tree-walking interpreter (interp.go) remains the semantic reference.
// Everything observable through Run — output, return value, fault,
// statistics, and the virtual-cycle account — is bit-identical between
// the two, which the differential suites (vm_test.go, fuzz_test.go)
// enforce. See compile.go for the one sanctioned, result-invisible
// divergence on error-aborted runs.
//
// Two per-site caches avoid repeated lookups the tree-walker pays on
// every execution:
//
//   - encoding updates: each call/alloc site's V-update (the delta an
//     instrumentation pass would embed in the binary) is resolved to a
//     SiteUpdate constant at compile time, replacing the per-update
//     plan query; the arithmetic itself is unchanged, so CCIDs are
//     bit-identical;
//   - patch verdicts: when the backend exposes PatchProber (the
//     defended backend does), each allocation site caches its last
//     (generation, ccid) -> patched answer, revalidated against the
//     table generation so fleet recycles invalidate it naturally. The
//     cache feeds SiteProfile only; the allocation path's own lookups
//     and statistics are untouched, keeping defense stats identical.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/heapsim"
)

// reg is one VM register: a Value the register owns, a definedness
// flag, and spare shadow-plane capacity kept across scalar writes
// (setScalar nils val.Valid/val.Origin, so their buffers are parked
// here for the next shadowed write to reuse).
//
// u/uok are the compiled tier's unboxed-scalar cache: when uok is
// set, the register's authoritative content is the shadow-free 8-byte
// scalar u, and val is stale. Only Machine closure code sets uok
// (reg.setU); every byte-level write clears it, and every reader that
// hands out *Value (rd, Machine.fetch) materializes first, so the VM
// and the cold tier observe bit-identical Values.
type reg struct {
	val       Value
	def       bool
	u         uint64
	uok       bool
	validCap  []byte
	originCap []uint32
}

// setScalar writes a fully-valid 8-byte scalar, reusing capacity.
func (r *reg) setScalar(v uint64) {
	b := r.val.Bytes
	if cap(b) < 8 {
		b = make([]byte, 8)
	} else {
		b = b[:8]
	}
	binary.LittleEndian.PutUint64(b, v)
	r.val.Bytes = b
	r.val.Valid = nil
	r.val.Origin = nil
	r.uok = false
	r.def = true
}

// setU caches a shadow-free 8-byte scalar without materializing its
// byte representation. Compiled-tier scalar flow stays in uint64s;
// rd/fetch materialize on the first byte-level read.
func (r *reg) setU(v uint64) {
	r.u = v
	r.uok = true
	r.def = true
}

// materialize writes the cached scalar through to val, restoring the
// invariant that val is authoritative (setScalar clears uok).
func (r *reg) materialize() {
	r.setScalar(r.u)
}

// set deep-copies src into the register. Safe when src aliases the
// register's own value (self-move).
func (r *reg) set(src *Value) {
	n := len(src.Bytes)
	if cap(r.val.Bytes) < n {
		r.val.Bytes = make([]byte, n)
	} else {
		r.val.Bytes = r.val.Bytes[:n]
	}
	copy(r.val.Bytes, src.Bytes)
	if src.Valid != nil {
		nv := len(src.Valid)
		if cap(r.validCap) < nv {
			r.validCap = make([]byte, nv)
		} else {
			r.validCap = r.validCap[:nv]
		}
		copy(r.validCap, src.Valid)
		r.val.Valid = r.validCap
	} else {
		r.val.Valid = nil
	}
	if src.Origin != nil {
		no := len(src.Origin)
		if cap(r.originCap) < no {
			r.originCap = make([]uint32, no)
		} else {
			r.originCap = r.originCap[:no]
		}
		copy(r.originCap, src.Origin)
		r.val.Origin = r.originCap
	} else {
		r.val.Origin = nil
	}
	r.uok = false
	r.def = true
}

// setBin writes a binary-operation result with combineScalar's exact
// shadow semantics, allocation-free. Operand shadow is read before the
// register is touched, so dst may alias an operand.
func (r *reg) setBin(result uint64, a, b *Value) {
	if a.Valid == nil && b.Valid == nil {
		// Both operands carry no shadow planes: scalarShadow would
		// report them fully valid, so the result is a clean scalar.
		r.setScalar(result)
		return
	}
	av, ao := a.scalarShadow()
	bv, bo := b.scalarShadow()
	r.setScalar(result)
	if av && bv {
		return
	}
	origin := ao
	if av {
		origin = bo
	}
	// Mirror invalidScalar: 8 zero V-mask bytes, and an origin plane
	// only when there is an origin to carry.
	if cap(r.validCap) < 8 {
		r.validCap = make([]byte, 8)
	} else {
		r.validCap = r.validCap[:8]
		for i := range r.validCap {
			r.validCap[i] = 0
		}
	}
	r.val.Valid = r.validCap
	if origin != 0 {
		if cap(r.originCap) < 8 {
			r.originCap = make([]uint32, 8)
		} else {
			r.originCap = r.originCap[:8]
		}
		for i := range r.originCap {
			r.originCap[i] = origin
		}
		r.val.Origin = r.originCap
	}
}

// frameV is one recycled activation record: the register file keeps
// its buffers across calls, so re-entering a function at the same
// depth touches no allocator.
type frameV struct {
	regs   []reg
	fn     int32
	retPC  int32
	retDst int32
	t      uint64 // V at the function prologue (save/restore discipline)
}

// siteIC is the per-site patch-verdict inline cache plus the site's
// allocation profile counters.
type siteIC struct {
	gen           uint64
	ccid          uint64
	valid         bool
	patched       bool
	allocs        uint64
	patchedAllocs uint64
}

// SiteStats is one allocation site's profile, built from the verdict
// inline caches: how many allocations it executed and how many hit a
// defense patch. Counters accumulate across runs of one VM.
type SiteStats struct {
	Site          callgraph.SiteID
	Fn            heapsim.AllocFn
	Allocs        uint64
	PatchedAllocs uint64
}

// VM executes a Compiled program against a backend. Like *Interp it is
// single-goroutine; unlike *Interp many VMs can share one Compiled.
type VM struct {
	c        *Compiled
	backend  HeapBackend
	bulk     BulkLoader  // non-nil when backend supports LoadInto
	prober   PatchProber // non-nil when backend exposes patch verdicts
	checkUse bool        // false only when the backend disclaims use points
	maxSteps uint64
	maxDepth int

	// Per-run state.
	input      []byte
	inPos      int
	output     []byte
	v          uint64 // the thread-local CCID variable V
	steps      uint64
	cycles     uint64
	encUpdates uint64
	allocs     uint64
	allocsByFn [8]uint64
	frees      uint64
	fault      error

	frames  []*frameV // frame free list; frames[:nframes] are live
	nframes int
	globals []reg
	ics     []siteIC
	scratch Value // transient loads (Output)
	args    []*Value

	// Result.Returned staging capacity (RunReuse's zero-alloc path).
	retBytes  []byte
	retValid  []byte
	retOrigin []uint32

	// Cooperative scheduling hook (RunThreads).
	yield      func()
	yieldEvery uint64
}

var _ Exec = (*VM)(nil)

// NewVM binds a compiled program to a backend. cfg.Coder must be the
// coder the program was compiled with: site updates were resolved
// against it at compile time. cfg.Engine is ignored (the engine is, by
// construction, the VM).
func NewVM(c *Compiled, cfg Config) (*VM, error) {
	if c == nil {
		return nil, errors.New("prog: NewVM with nil Compiled")
	}
	if cfg.Backend == nil {
		return nil, errors.New("prog: Config.Backend is required")
	}
	if cfg.Coder != c.coder {
		return nil, fmt.Errorf("prog %s: Config.Coder does not match the coder the program was compiled with", c.p.Name)
	}
	vm := &VM{
		c:        c,
		backend:  cfg.Backend,
		maxSteps: cfg.MaxSteps,
		maxDepth: cfg.MaxDepth,
		checkUse: true,
		globals:  make([]reg, len(c.globalNames)),
		ics:      make([]siteIC, c.icCount),
	}
	if vm.maxSteps == 0 {
		vm.maxSteps = DefaultMaxSteps
	}
	if vm.maxDepth == 0 {
		vm.maxDepth = DefaultMaxDepth
	}
	vm.bulk, _ = cfg.Backend.(BulkLoader)
	if obs, ok := cfg.Backend.(UseObserver); ok && !obs.ObservesUse() {
		// The backend guarantees CheckUse is a no-op: elide the calls.
		vm.checkUse = false
	}
	vm.prober, _ = cfg.Backend.(PatchProber)
	return vm, nil
}

// setSchedHook implements the runner contract (see RunThreads).
func (vm *VM) setSchedHook(every uint64, fn func()) {
	vm.yieldEvery = every
	vm.yield = fn
}

// SiteProfile reports the per-allocation-site profile accumulated by
// the verdict inline caches, in compile order. Sites only profile
// patch verdicts when the backend implements PatchProber; allocation
// counts accumulate regardless.
func (vm *VM) SiteProfile() []SiteStats {
	out := make([]SiteStats, 0, len(vm.c.allocs))
	for i := range vm.c.allocs {
		rec := &vm.c.allocs[i]
		ic := &vm.ics[rec.ic]
		out = append(out, SiteStats{
			Site:          rec.siteID,
			Fn:            rec.byFn,
			Allocs:        ic.allocs,
			PatchedAllocs: ic.patchedAllocs,
		})
	}
	return out
}

// Run executes the program on the given input; semantics are identical
// to Interp.Run.
func (vm *VM) Run(input []byte) (*Result, error) {
	res := &Result{}
	if err := vm.run(res, input); err != nil {
		return nil, err
	}
	return res, nil
}

// RunReuse is Run recycling res's buffers (Output and Returned
// capacity), so steady-state re-execution allocates nothing. On a
// non-nil error (malformed program), res contents are unspecified,
// mirroring Run's nil result. Data in res from a previous run is
// overwritten; Returned's buffers are owned by the VM and are
// invalidated by the next run.
func (vm *VM) RunReuse(res *Result, input []byte) error {
	return vm.run(res, input)
}

func (vm *VM) run(res *Result, input []byte) error {
	vm.input = input
	vm.inPos = 0
	vm.output = res.Output[:0]
	vm.v = 0
	vm.steps = 0
	vm.cycles = 0
	vm.encUpdates = 0
	vm.allocs = 0
	vm.allocsByFn = [8]uint64{}
	vm.frees = 0
	vm.fault = nil
	for i := range vm.globals {
		vm.globals[i].def = false
	}
	vm.nframes = 0
	res.Returned = Value{}
	startCycles := vm.backend.Cycles()

	err := vm.exec(res)
	res.Output = vm.output
	res.Steps = vm.steps
	res.EncUpdates = vm.encUpdates
	res.Allocs = vm.allocs
	res.AllocsByFn = vm.allocsByFn
	res.Frees = vm.frees
	res.InterpCycles = vm.cycles
	res.Cycles = vm.cycles + (vm.backend.Cycles() - startCycles)
	res.Fault = nil
	if err != nil {
		if errors.Is(err, errCrashed) {
			res.Fault = vm.fault
			return nil
		}
		return err
	}
	return nil
}

// crash records a fault and returns the crash sentinel (shared with
// the tree-walker).
func (vm *VM) crash(err error) error {
	vm.fault = err
	return errCrashed
}

func (vm *VM) undefVar(name string) error {
	return fmt.Errorf("prog %s: undefined variable %q", vm.c.p.Name, name)
}

// rd resolves an operand: a register (definedness-checked, with the
// tree-walker's exact error) or an interned constant. Error
// construction is outlined to rdUndef so rd itself stays inlinable.
func (vm *VM) rd(f *frameV, o int32) (*Value, error) {
	if o >= 0 {
		r := &f.regs[o]
		if !r.def {
			return nil, vm.rdUndef(f, o)
		}
		if r.uok {
			r.materialize()
		}
		return &r.val, nil
	}
	return &vm.c.consts[^o], nil
}

//go:noinline
func (vm *VM) rdUndef(f *frameV, o int32) error {
	return vm.undefVar(vm.c.funcs[f.fn].regNames[o])
}

// effAddr forms base+off with the address use-point checks, mirroring
// the tree-walker's evalAddr (one check when off is absent).
func (vm *VM) effAddr(f *frameV, a, b int32) (uint64, error) {
	bv, err := vm.rd(f, a)
	if err != nil {
		return 0, err
	}
	if vm.checkUse {
		vm.backend.CheckUse(*bv, UseAddress, vm.v)
	}
	if b == opndNone {
		return bv.Uint(), nil
	}
	ov, err := vm.rd(f, b)
	if err != nil {
		return 0, err
	}
	if vm.checkUse {
		vm.backend.CheckUse(*ov, UseAddress, vm.v)
	}
	return bv.Uint() + ov.Uint(), nil
}

// pushFrame activates a recycled (or new) frame for funcs[fnIdx].
func (vm *VM) pushFrame(fnIdx, retPC, retDst int32) *frameV {
	vm.nframes++
	if vm.nframes > len(vm.frames) {
		vm.frames = append(vm.frames, &frameV{})
	}
	nf := vm.frames[vm.nframes-1]
	nregs := int(vm.c.funcs[fnIdx].nregs)
	if cap(nf.regs) < nregs {
		nf.regs = make([]reg, nregs)
	} else {
		nf.regs = nf.regs[:nregs]
		for i := range nf.regs {
			nf.regs[i].def = false
		}
	}
	nf.fn = fnIdx
	nf.retPC = retPC
	nf.retDst = retDst
	nf.t = vm.v
	return nf
}

// loadIntoReg bulk-loads into a register's owned buffers, lending the
// register's parked shadow capacity to the backend and harvesting any
// growth back.
func (vm *VM) loadIntoReg(r *reg, addr, n uint64) error {
	r.val.Valid = r.validCap
	r.val.Origin = r.originCap
	err := vm.bulk.LoadInto(&r.val, addr, n, vm.v)
	if r.val.Valid != nil {
		r.validCap = r.val.Valid
	}
	if r.val.Origin != nil {
		r.originCap = r.val.Origin
	}
	if err != nil {
		return err
	}
	r.uok = false
	r.def = true
	return nil
}

// noteAlloc maintains one site's verdict inline cache: revalidated by
// table generation and allocation CCID, probed (side-effect-free) only
// on a miss.
func (vm *VM) noteAlloc(rec *allocRec, ccid uint64) {
	ic := &vm.ics[rec.ic]
	gen := vm.prober.PatchTableGeneration()
	if !ic.valid || ic.gen != gen || ic.ccid != ccid {
		ic.patched = vm.prober.ProbePatched(rec.fn, ccid)
		ic.gen = gen
		ic.ccid = ccid
		ic.valid = true
	}
	if ic.patched {
		ic.patchedAllocs++
	}
}

// zeroValue backs void results (a call with a Dst binds Value{}).
var zeroValue Value

// exec is the dispatch loop.
func (vm *VM) exec(res *Result) error {
	code := vm.c.code
	f := vm.pushFrame(0, 0, opndNone)
	pc := vm.c.funcs[0].entry
	for {
		ins := &code[pc]
		if ins.tick {
			vm.steps++
			vm.cycles += CycStmt
			if vm.steps > vm.maxSteps {
				return fmt.Errorf("prog %s: step limit %d exceeded", vm.c.p.Name, vm.maxSteps)
			}
			if vm.yield != nil && vm.steps%vm.yieldEvery == 0 {
				vm.yield()
			}
		}
		switch ins.op {
		case opNop:
			// Costs the base step only.

		case opCheckVar:
			if !f.regs[ins.a].def {
				return vm.undefVar(vm.c.funcs[f.fn].regNames[ins.a])
			}

		case opLoadK:
			f.regs[ins.dst].setScalar(vm.c.constU[^ins.a])

		case opMove:
			src, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			f.regs[ins.dst].set(src)

		case opBin:
			av, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			bv, err := vm.rd(f, ins.b)
			if err != nil {
				return err
			}
			r, err := binScalar(ins.bop, av.Uint(), bv.Uint())
			if err != nil {
				return err
			}
			f.regs[ins.dst].setBin(r, av, bv)

		case opInputLen:
			f.regs[ins.dst].setScalar(uint64(len(vm.input)))

		case opInputRem:
			f.regs[ins.dst].setScalar(uint64(len(vm.input) - vm.inPos))

		case opGlobalGet:
			g := &vm.globals[ins.aux]
			if g.def {
				f.regs[ins.dst].set(&g.val)
			} else {
				f.regs[ins.dst].setScalar(0)
			}

		case opGlobalSet:
			src, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			vm.globals[ins.aux].set(src)

		case opJump:
			pc = ins.aux
			continue

		case opBr:
			cv, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*cv, UseControlFlow, vm.v)
			}
			if cv.Uint() == 0 {
				pc = ins.aux
				continue
			}

		case opCall:
			rec := &vm.c.calls[ins.aux]
			callee := &vm.c.funcs[rec.fnIdx]
			if cap(vm.args) < len(rec.args) {
				vm.args = make([]*Value, len(rec.args))
			}
			args := vm.args[:len(rec.args)]
			for i, o := range rec.args {
				v, err := vm.rd(f, o)
				if err != nil {
					return err
				}
				args[i] = v
			}
			if len(args) != int(callee.nparams) {
				return fmt.Errorf("prog %s: call to %s with %d args, want %d",
					vm.c.p.Name, callee.name, len(args), int(callee.nparams))
			}
			if vm.nframes > vm.maxDepth {
				return fmt.Errorf("prog %s: call depth limit %d exceeded", vm.c.p.Name, vm.maxDepth)
			}
			if rec.upd.Instrumented {
				vm.v = rec.upd.Apply(f.t)
				vm.encUpdates++
				vm.cycles += vm.c.encCycles
			}
			vm.cycles += CycCall
			nf := vm.pushFrame(rec.fnIdx, pc+1, rec.dst)
			for i := int32(0); i < callee.nparams; i++ {
				nf.regs[i].set(args[i])
			}
			if callee.prologue {
				vm.cycles += CycEncPrologue
			}
			f = nf
			pc = callee.entry
			continue

		case opRet, opRetVoid:
			var rv *Value
			if ins.op == opRet {
				v, err := vm.rd(f, ins.a)
				if err != nil {
					return err
				}
				rv = v
			}
			if vm.nframes == 1 {
				vm.setReturned(res, rv)
				return nil
			}
			retPC, retDst := f.retPC, f.retDst
			vm.nframes--
			f = vm.frames[vm.nframes-1]
			// Restore discipline: V returns to the caller's context.
			vm.v = f.t
			if retDst != opndNone {
				if rv == nil {
					rv = &zeroValue
				}
				f.regs[retDst].set(rv)
			}
			pc = retPC
			continue

		case opAlloc, opRealloc:
			rec := &vm.c.allocs[ins.aux]
			var ptrOp *Value
			var err error
			if ins.op == opRealloc {
				if ptrOp, err = vm.rd(f, rec.ptr); err != nil {
					return err
				}
			}
			size, err := vm.rd(f, rec.size)
			if err != nil {
				return err
			}
			nv, err := vm.rd(f, rec.n)
			if err != nil {
				return err
			}
			al, err := vm.rd(f, rec.align)
			if err != nil {
				return err
			}
			ccid := vm.v
			switch {
			case rec.ccid != opndNone:
				cv, err := vm.rd(f, rec.ccid)
				if err != nil {
					return err
				}
				ccid = cv.Uint()
				vm.encUpdates++
				vm.cycles += CycEncUpdatePCC
			case rec.upd.Instrumented:
				ccid = rec.upd.Apply(f.t)
				vm.encUpdates++
				vm.cycles += vm.c.encCycles
			}
			vm.allocs++
			vm.allocsByFn[rec.byFn]++
			var ptr uint64
			var aerr error
			if ins.op == opRealloc {
				ptr, aerr = vm.backend.Realloc(ccid, ptrOp.Uint(), size.Uint())
			} else {
				ptr, aerr = vm.backend.Alloc(rec.fn, ccid, nv.Uint(), size.Uint(), al.Uint())
			}
			if aerr != nil {
				return vm.crash(aerr)
			}
			f.regs[rec.dst].setScalar(ptr)
			vm.ics[rec.ic].allocs++
			if vm.prober != nil {
				vm.noteAlloc(rec, ccid)
			}

		case opFree:
			pv, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*pv, UseAddress, vm.v)
			}
			vm.frees++
			if ferr := vm.backend.Free(pv.Uint(), vm.v); ferr != nil {
				return vm.crash(ferr)
			}

		case opLoad:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			r := &f.regs[ins.dst]
			if vm.bulk != nil {
				if lerr := vm.loadIntoReg(r, addr, nv.Uint()); lerr != nil {
					return vm.crash(lerr)
				}
			} else {
				v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
				if lerr != nil {
					return vm.crash(lerr)
				}
				r.val = v
				r.uok = false
				r.def = true
			}

		case opStore:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return err
			}
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			n := uint64(8)
			if ins.dst != opndNone {
				nv, err := vm.rd(f, ins.dst)
				if err != nil {
					return err
				}
				n = nv.Uint()
				if n > 8 {
					n = 8
				}
			}
			if serr := vm.backend.Store(addr, src.View(0, int(n)), vm.v); serr != nil {
				return vm.crash(serr)
			}

		case opStoreVar:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return err
			}
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			if serr := vm.backend.Store(addr, *src, vm.v); serr != nil {
				return vm.crash(serr)
			}

		case opStoreBytes:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return err
			}
			if serr := vm.backend.Store(addr, vm.c.datas[ins.aux], vm.v); serr != nil {
				return vm.crash(serr)
			}

		case opMemcpy:
			dst, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			src, err := vm.rd(f, ins.b)
			if err != nil {
				return err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*dst, UseAddress, vm.v)
				vm.backend.CheckUse(*src, UseAddress, vm.v)
			}
			if merr := vm.backend.Memcpy(dst.Uint(), src.Uint(), nv.Uint(), vm.v); merr != nil {
				return vm.crash(merr)
			}

		case opMemset:
			dst, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			bv, err := vm.rd(f, ins.b)
			if err != nil {
				return err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*dst, UseAddress, vm.v)
			}
			if merr := vm.backend.Memset(dst.Uint(), byte(bv.Uint()), nv.Uint(), vm.v); merr != nil {
				return vm.crash(merr)
			}

		case opReadInput:
			nv, err := vm.rd(f, ins.a)
			if err != nil {
				return err
			}
			// Clamp in uint64 space (see the tree-walker's ReadInput).
			take := len(vm.input) - vm.inPos
			if nu := nv.Uint(); nu < uint64(take) {
				take = int(nu)
			}
			r := &f.regs[ins.dst]
			if cap(r.val.Bytes) < take {
				r.val.Bytes = make([]byte, take)
			} else {
				r.val.Bytes = r.val.Bytes[:take]
			}
			copy(r.val.Bytes, vm.input[vm.inPos:vm.inPos+take])
			vm.inPos += take
			r.val.Valid = nil
			r.val.Origin = nil
			r.uok = false
			r.def = true

		case opOutput:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			if vm.bulk != nil {
				if lerr := vm.bulk.LoadInto(&vm.scratch, addr, nv.Uint(), vm.v); lerr != nil {
					return vm.crash(lerr)
				}
				if vm.checkUse {
					vm.backend.CheckUse(vm.scratch, UseOutput, vm.v)
				}
				vm.output = append(vm.output, vm.scratch.Bytes...)
				break
			}
			v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
			if lerr != nil {
				return vm.crash(lerr)
			}
			if vm.checkUse {
				vm.backend.CheckUse(v, UseOutput, vm.v)
			}
			vm.output = append(vm.output, v.Bytes...)

		case opOutputVar:
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*src, UseOutput, vm.v)
			}
			vm.output = append(vm.output, src.Bytes...)

		default:
			return fmt.Errorf("prog %s: unknown opcode %d", vm.c.p.Name, ins.op)
		}
		pc++
	}
}

// setReturned stages the entry function's return value into the
// Result, reusing the VM's staging capacity (rv may point into a
// register about to be recycled by the next run).
func (vm *VM) setReturned(res *Result, rv *Value) {
	if rv == nil {
		res.Returned = Value{}
		return
	}
	vm.retBytes = growValueBytes(vm.retBytes, uint64(len(rv.Bytes)))
	copy(vm.retBytes, rv.Bytes)
	out := Value{Bytes: vm.retBytes}
	if rv.Valid != nil {
		vm.retValid = growValueBytes(vm.retValid, uint64(len(rv.Valid)))
		copy(vm.retValid, rv.Valid)
		out.Valid = vm.retValid
	}
	if rv.Origin != nil {
		n := len(rv.Origin)
		if cap(vm.retOrigin) < n {
			vm.retOrigin = make([]uint32, n)
		} else {
			vm.retOrigin = vm.retOrigin[:n]
		}
		copy(vm.retOrigin, rv.Origin)
		out.Origin = vm.retOrigin
	}
	res.Returned = out
}
