package prog

import (
	"fmt"

	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
)

// UseKind classifies how a value is being used, for V-bit checking in
// analysis mode. Following Section V of the paper, validity is checked
// only at these use points — not at loads — so padding-induced
// uninitialized copies (Figure 4) never raise false positives.
type UseKind uint8

// Use points.
const (
	// UseControlFlow is a branch or loop condition.
	UseControlFlow UseKind = iota + 1
	// UseAddress is using a value as (part of) a memory address.
	UseAddress
	// UseOutput is passing data to a system call (program output).
	UseOutput
)

func (k UseKind) String() string {
	switch k {
	case UseControlFlow:
		return "control-flow"
	case UseAddress:
		return "address"
	case UseOutput:
		return "output"
	default:
		return fmt.Sprintf("UseKind(%d)", uint8(k))
	}
}

// HeapBackend is the execution substrate the interpreter drives. Three
// implementations exist: the native backend below (raw allocator, no
// checking), the shadow-memory analysis backend (package shadow), and
// the online defended backend (package defense). The ccid argument is
// the calling-context ID current at the operation; allocation-type
// calls receive the allocation-time CCID the paper's patches key on.
type HeapBackend interface {
	// Alloc services malloc/calloc/memalign/aligned_alloc. n is the
	// calloc element count (1 otherwise); align is 0 except for aligned
	// allocations.
	Alloc(fn heapsim.AllocFn, ccid, n, size, align uint64) (uint64, error)
	// Realloc services realloc; ccid is the CCID at the realloc call,
	// which becomes the buffer's new allocation context (Section V).
	Realloc(ccid, ptr, size uint64) (uint64, error)
	// Free services free(ptr).
	Free(ptr, ccid uint64) error
	// Load reads n bytes at addr.
	Load(addr, n, ccid uint64) (Value, error)
	// Store writes v.Bytes at addr.
	Store(addr uint64, v Value, ccid uint64) error
	// Memcpy copies n bytes from src to dst.
	Memcpy(dst, src, n, ccid uint64) error
	// Memset fills n bytes at addr with b.
	Memset(addr uint64, b byte, n, ccid uint64) error
	// CheckUse inspects a value at a use point (analysis mode only).
	CheckUse(v Value, use UseKind, ccid uint64)
	// Cycles returns the backend's accumulated virtual-cycle cost (see
	// the cost model in cost.go).
	Cycles() uint64
}

// BulkLoader is an optional HeapBackend extension: LoadInto reuses
// dst's Bytes/Valid/Origin capacity instead of allocating fresh
// buffers per load. The interpreter uses it with a scratch Value for
// transient loads (output emission) so the steady-state memory-op path
// allocates nothing; results that must outlive the call still go
// through Load.
type BulkLoader interface {
	LoadInto(dst *Value, addr, n, ccid uint64) error
}

// UseObserver is an optional HeapBackend extension that lets a backend
// declare whether CheckUse does anything at all. Backends that return
// false (native, defended) promise CheckUse is a no-op with no cycle
// or statistics effect, which lets compiled engines elide the calls
// from hot paths. Backends that do not implement the interface are
// conservatively treated as observing: wrappers that count or forward
// use points keep seeing every call.
type UseObserver interface {
	ObservesUse() bool
}

// PatchProber is an optional HeapBackend extension exposing
// side-effect-free visibility into a defense patch table, for per-site
// verdict caches: ProbePatched answers "would an allocation through fn
// at ccid hit a patch?" without touching statistics or cycles, and
// PatchTableGeneration is the epoch that invalidates cached answers
// (it changes whenever the table is re-established, e.g. on a fleet
// worker recycle). The defended backend implements it; allocation-path
// lookups and their accounting are unaffected.
type PatchProber interface {
	PatchTableGeneration() uint64
	ProbePatched(fn heapsim.AllocFn, ccid uint64) bool
}

// NativeBackend runs programs directly against the raw allocator with
// no interposition: the paper's uninstrumented native execution, the
// baseline all overhead numbers normalize against.
type NativeBackend struct {
	under  heapsim.Allocator
	space  *mem.Space
	cycles uint64
}

var (
	_ HeapBackend = (*NativeBackend)(nil)
	_ BulkLoader  = (*NativeBackend)(nil)
)

// NewNativeBackend creates a native backend over a fresh boundary-tag
// heap.
func NewNativeBackend(space *mem.Space) (*NativeBackend, error) {
	h, err := heapsim.New(space)
	if err != nil {
		return nil, err
	}
	return &NativeBackend{under: h, space: space}, nil
}

// NewNativeBackendWithAllocator creates a native backend over an
// arbitrary allocator sharing the space — the uninstrumented baseline
// for allocator-agnostic comparisons (paper property (5), and the
// campaign oracle's native×pool cells).
func NewNativeBackendWithAllocator(space *mem.Space, under heapsim.Allocator) (*NativeBackend, error) {
	if under == nil {
		return nil, fmt.Errorf("prog: nil allocator")
	}
	return &NativeBackend{under: under, space: space}, nil
}

// Heap exposes the underlying boundary-tag heap when the backend runs
// over one (for statistics and integrity checks); nil when the backend
// was built over a different allocator.
func (nb *NativeBackend) Heap() *heapsim.Heap {
	h, _ := nb.under.(*heapsim.Heap)
	return h
}

// Allocator exposes the underlying allocator regardless of kind.
func (nb *NativeBackend) Allocator() heapsim.Allocator { return nb.under }

// Alloc implements HeapBackend.
func (nb *NativeBackend) Alloc(fn heapsim.AllocFn, _, n, size, align uint64) (uint64, error) {
	nb.cycles += CycAlloc
	switch fn {
	case heapsim.FnMalloc:
		return nb.under.Malloc(size)
	case heapsim.FnCalloc:
		return nb.under.Calloc(n, size)
	case heapsim.FnMemalign, heapsim.FnAlignedAlloc:
		return nb.under.Memalign(align, size)
	default:
		return 0, fmt.Errorf("prog: Alloc with unsupported function %v", fn)
	}
}

// Realloc implements HeapBackend.
func (nb *NativeBackend) Realloc(_, ptr, size uint64) (uint64, error) {
	nb.cycles += CycAlloc
	return nb.under.Realloc(ptr, size)
}

// Free implements HeapBackend.
func (nb *NativeBackend) Free(ptr, _ uint64) error {
	nb.cycles += CycFree
	return nb.under.Free(ptr)
}

// Load implements HeapBackend.
func (nb *NativeBackend) Load(addr, n, _ uint64) (Value, error) {
	nb.cycles += CycMemOp + n/CycBytesPerCycle
	b, err := nb.space.Read(addr, n)
	if err != nil {
		return Value{}, err
	}
	return Value{Bytes: b}, nil
}

// LoadInto implements BulkLoader, reusing dst's byte capacity.
func (nb *NativeBackend) LoadInto(dst *Value, addr, n, _ uint64) error {
	nb.cycles += CycMemOp + n/CycBytesPerCycle
	dst.Bytes = growValueBytes(dst.Bytes, n)
	dst.Valid = nil // native loads are always fully valid
	dst.Origin = nil
	return nb.space.ReadInto(addr, dst.Bytes)
}

// growValueBytes returns a length-n slice reusing b's capacity when
// possible; contents are unspecified.
func growValueBytes(b []byte, n uint64) []byte {
	if uint64(cap(b)) >= n {
		return b[:n]
	}
	return make([]byte, n)
}

// Store implements HeapBackend.
func (nb *NativeBackend) Store(addr uint64, v Value, _ uint64) error {
	nb.cycles += CycMemOp + uint64(len(v.Bytes))/CycBytesPerCycle
	return nb.space.Write(addr, v.Bytes)
}

// Memcpy implements HeapBackend.
func (nb *NativeBackend) Memcpy(dst, src, n, _ uint64) error {
	nb.cycles += CycMemOp + n/CycBytesPerCycle
	return nb.space.Memmove(dst, src, n)
}

// Memset implements HeapBackend.
func (nb *NativeBackend) Memset(addr uint64, b byte, n, _ uint64) error {
	nb.cycles += CycMemOp + n/CycBytesPerCycle
	return nb.space.Memset(addr, b, n)
}

// CheckUse implements HeapBackend: native execution checks nothing.
func (nb *NativeBackend) CheckUse(Value, UseKind, uint64) {}

// ObservesUse implements UseObserver: native execution ignores use
// points, so engines may elide CheckUse calls entirely.
func (nb *NativeBackend) ObservesUse() bool { return false }

// Reset recycles the backend for a new execution after its space has
// been Reset: cycle accounting is cleared and the heap re-reserves its
// arena, so a recycled backend behaves bit-identically to a fresh one.
func (nb *NativeBackend) Reset() error {
	nb.cycles = 0
	switch u := nb.under.(type) {
	case interface{ Reset() error }:
		return u.Reset()
	case interface{ Reset() }:
		u.Reset()
		return nil
	default:
		return fmt.Errorf("prog: allocator %T does not support Reset", nb.under)
	}
}

// Cycles implements HeapBackend.
func (nb *NativeBackend) Cycles() uint64 { return nb.cycles }
