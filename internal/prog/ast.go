package prog

import (
	"heaptherapy/internal/callgraph"
	"heaptherapy/internal/heapsim"
)

// --- expressions -----------------------------------------------------------

// Expr is a side-effect-free expression evaluated against the current
// frame.
type Expr interface{ isExpr() }

// Const is a literal scalar.
type Const struct{ V uint64 }

// Var reads a frame variable.
type Var struct{ Name string }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators. Comparisons yield 0 or 1.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpMul
	OpDiv // division by zero yields 0, like a saturating DSP; programs under test guard it
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpEq
	OpNe
	OpGt
	OpGe
)

// Bin applies Op to A and B as 64-bit scalars.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// InputLen evaluates to the total length of the program input.
type InputLen struct{}

// InputRemaining evaluates to the number of unread input bytes.
type InputRemaining struct{}

// Global reads a global (per-thread) variable; undefined globals read
// as zero, like a zero-initialized thread-local in C. The
// instrumentation rewriter stores the calling-context value V in one.
type Global struct{ Name string }

func (Const) isExpr()          {}
func (Var) isExpr()            {}
func (Bin) isExpr()            {}
func (InputLen) isExpr()       {}
func (InputRemaining) isExpr() {}
func (Global) isExpr()         {}

// Convenience constructors keep program definitions readable.

// C is shorthand for Const.
func C(v uint64) Expr { return Const{V: v} }

// V is shorthand for Var.
func V(name string) Expr { return Var{Name: name} }

// Add returns a+b.
func Add(a, b Expr) Expr { return Bin{Op: OpAdd, A: a, B: b} }

// Sub returns a-b.
func Sub(a, b Expr) Expr { return Bin{Op: OpSub, A: a, B: b} }

// Mul returns a*b.
func Mul(a, b Expr) Expr { return Bin{Op: OpMul, A: a, B: b} }

// And returns a&b.
func And(a, b Expr) Expr { return Bin{Op: OpAnd, A: a, B: b} }

// Lt returns a<b.
func Lt(a, b Expr) Expr { return Bin{Op: OpLt, A: a, B: b} }

// Le returns a<=b.
func Le(a, b Expr) Expr { return Bin{Op: OpLe, A: a, B: b} }

// Eq returns a==b.
func Eq(a, b Expr) Expr { return Bin{Op: OpEq, A: a, B: b} }

// Ne returns a!=b.
func Ne(a, b Expr) Expr { return Bin{Op: OpNe, A: a, B: b} }

// Gt returns a>b.
func Gt(a, b Expr) Expr { return Bin{Op: OpGt, A: a, B: b} }

// --- statements ------------------------------------------------------------

// Stmt is an executable statement.
type Stmt interface{ isStmt() }

// Assign stores the expression's scalar into a frame variable.
type Assign struct {
	Dst string
	E   Expr
}

// SetGlobal stores the expression's scalar into a global (per-thread)
// variable.
type SetGlobal struct {
	Dst string
	E   Expr
}

// Alloc performs a heap allocation through the given API. The linker
// assigns the call site; at runtime the buffer's allocation-time CCID
// is computed per the active encoding. Align is used by memalign and
// aligned_alloc only. For calloc, Size is the element size and N the
// count; other functions ignore N.
type Alloc struct {
	Dst   string
	Fn    heapsim.AllocFn
	Size  Expr
	N     Expr // calloc count; nil = 1
	Align Expr // memalign alignment; nil
	// CCID, when non-nil, supplies the allocation-time calling-context
	// ID explicitly (evaluated at the call). The instrumentation
	// rewriter emits these so instrumented programs carry their own
	// context arithmetic; hand-written programs leave it nil and let
	// the interpreter's bound coder compute it.
	CCID Expr

	site callgraph.SiteID // assigned by Link
}

// ReallocStmt resizes an allocation (realloc has its own CCID site).
type ReallocStmt struct {
	Dst  string
	Ptr  Expr
	Size Expr
	// CCID, when non-nil, supplies the context explicitly (see Alloc).
	CCID Expr

	site callgraph.SiteID
}

// FreeStmt releases a heap buffer.
type FreeStmt struct{ Ptr Expr }

// Load reads N bytes of memory at Base+Off into Dst. The base address
// is an address use point: in analysis mode, using uninitialized data
// as an address raises a warning.
type Load struct {
	Dst  string
	Base Expr
	Off  Expr
	N    Expr
}

// Store writes the first N bytes of the source value to Base+Off.
type Store struct {
	Base Expr
	Off  Expr
	Src  Expr // scalar source
	N    Expr // bytes to store (1..8)
}

// StoreVar writes a whole variable's bytes to Base+Off, preserving
// shadow state (the memory image of a struct copy).
type StoreVar struct {
	Base Expr
	Off  Expr
	Src  string
}

// StoreBytes writes a literal byte string to Base+Off.
type StoreBytes struct {
	Base Expr
	Off  Expr
	Data []byte
}

// Memcpy copies N bytes from Src to Dst (heap to heap), propagating
// shadow state byte for byte in analysis mode.
type Memcpy struct {
	Dst Expr
	Src Expr
	N   Expr
}

// Memset fills N bytes at Dst with the low byte of B.
type Memset struct {
	Dst Expr
	B   Expr
	N   Expr
}

// ReadInput consumes up to N bytes of program input into Dst; the
// variable receives the actually-read bytes (fully valid).
type ReadInput struct {
	Dst string
	N   Expr
}

// Output appends N bytes of memory at Base+Off to the program output.
// This models a write(2)-style system call: in analysis mode the range
// is an output use point, so uninitialized bytes raise warnings
// (Section V: V-bits are checked when data is used in a system call).
type Output struct {
	Base Expr
	Off  Expr
	N    Expr
}

// OutputVar appends a variable's bytes to the program output (also a
// system-call use point).
type OutputVar struct{ Src string }

// If executes Then or Else depending on Cond. Evaluating Cond is a
// control-flow use point for V-bit checking.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops while Cond is nonzero (control-flow use point).
type While struct {
	Cond Expr
	Body []Stmt
}

// Call invokes another function. Arguments are evaluated in the caller
// and bound to the callee's parameters; the callee's Return value (if
// any) lands in Dst (may be empty).
type Call struct {
	Dst    string
	Callee string
	Args   []Expr

	site callgraph.SiteID
}

// Return ends the current function, optionally yielding a value.
type Return struct{ E Expr }

// Nop burns one interpreter step; used by workload generators to model
// non-allocating computation.
type Nop struct{}

func (Assign) isStmt()      {}
func (SetGlobal) isStmt()   {}
func (Alloc) isStmt()       {}
func (ReallocStmt) isStmt() {}
func (FreeStmt) isStmt()    {}
func (Load) isStmt()        {}
func (Store) isStmt()       {}
func (StoreVar) isStmt()    {}
func (StoreBytes) isStmt()  {}
func (Memcpy) isStmt()      {}
func (Memset) isStmt()      {}
func (ReadInput) isStmt()   {}
func (Output) isStmt()      {}
func (OutputVar) isStmt()   {}
func (If) isStmt()          {}
func (While) isStmt()       {}
func (Call) isStmt()        {}
func (Return) isStmt()      {}
func (Nop) isStmt()         {}

// Func is a program function.
type Func struct {
	Name   string
	Params []string
	Body   []Stmt
}

// Program is a linked program: functions plus the derived call graph.
type Program struct {
	// Name identifies the program in reports.
	Name string
	// Entry is the entry function, conventionally "main".
	Entry string
	// Funcs maps function names to definitions.
	Funcs map[string]*Func

	graph   *callgraph.Graph
	targets []callgraph.NodeID
}

// Graph returns the program's call graph (available after Link).
func (p *Program) Graph() *callgraph.Graph { return p.graph }

// Targets returns the allocation-API nodes in the call graph.
func (p *Program) Targets() []callgraph.NodeID { return p.targets }
