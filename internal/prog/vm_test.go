package prog

// Differential verification of the bytecode VM against the
// tree-walking reference interpreter: every observable of Run —
// output, return value, fault, statistics, and both interpreter- and
// backend-side cycle accounting — must be bit-identical, across
// backends, encoding schemes and encoders, crash paths, and malformed
// programs (where the error strings themselves must match). See also
// fuzz_test.go (randomized programs) and the cross-package suites in
// internal/experiments and internal/fleet.

import (
	"bytes"
	"encoding/binary"
	"strings"
	"sync"
	"testing"

	"heaptherapy/internal/encoding"
	"heaptherapy/internal/heapsim"
	"heaptherapy/internal/mem"
)

func newNative(t *testing.T) HeapBackend {
	t.Helper()
	space, err := mem.NewSpace(mem.Config{})
	if err != nil {
		t.Fatal(err)
	}
	backend, err := NewNativeBackend(space)
	if err != nil {
		t.Fatal(err)
	}
	return backend
}

// assertSameRun compares one execution across the two engines.
func assertSameRun(t *testing.T, label string, tr, vr *Result, terr, verr error) {
	t.Helper()
	if (terr != nil) != (verr != nil) {
		t.Fatalf("%s: tree err = %v, vm err = %v", label, terr, verr)
	}
	if terr != nil {
		if terr.Error() != verr.Error() {
			t.Fatalf("%s: error mismatch\ntree: %v\nvm:   %v", label, terr, verr)
		}
		return
	}
	if !bytes.Equal(tr.Output, vr.Output) {
		t.Errorf("%s: output mismatch\ntree: %x\nvm:   %x", label, tr.Output, vr.Output)
	}
	if !bytes.Equal(tr.Returned.Bytes, vr.Returned.Bytes) {
		t.Errorf("%s: returned bytes mismatch: tree %x vm %x", label, tr.Returned.Bytes, vr.Returned.Bytes)
	}
	if !bytes.Equal(tr.Returned.Valid, vr.Returned.Valid) {
		t.Errorf("%s: returned V-bits mismatch: tree %x vm %x", label, tr.Returned.Valid, vr.Returned.Valid)
	}
	if len(tr.Returned.Origin) != len(vr.Returned.Origin) {
		t.Errorf("%s: returned origin mismatch: tree %v vm %v", label, tr.Returned.Origin, vr.Returned.Origin)
	} else {
		for i := range tr.Returned.Origin {
			if tr.Returned.Origin[i] != vr.Returned.Origin[i] {
				t.Errorf("%s: returned origin[%d]: tree %d vm %d", label, i, tr.Returned.Origin[i], vr.Returned.Origin[i])
				break
			}
		}
	}
	if (tr.Fault != nil) != (vr.Fault != nil) {
		t.Fatalf("%s: fault mismatch: tree %v vm %v", label, tr.Fault, vr.Fault)
	}
	if tr.Fault != nil && tr.Fault.Error() != vr.Fault.Error() {
		t.Errorf("%s: fault text mismatch\ntree: %v\nvm:   %v", label, tr.Fault, vr.Fault)
	}
	if tr.Steps != vr.Steps {
		t.Errorf("%s: steps: tree %d vm %d", label, tr.Steps, vr.Steps)
	}
	if tr.Cycles != vr.Cycles {
		t.Errorf("%s: cycles: tree %d vm %d", label, tr.Cycles, vr.Cycles)
	}
	if tr.InterpCycles != vr.InterpCycles {
		t.Errorf("%s: interp cycles: tree %d vm %d", label, tr.InterpCycles, vr.InterpCycles)
	}
	if tr.EncUpdates != vr.EncUpdates {
		t.Errorf("%s: enc updates: tree %d vm %d", label, tr.EncUpdates, vr.EncUpdates)
	}
	if tr.Allocs != vr.Allocs || tr.Frees != vr.Frees {
		t.Errorf("%s: allocs/frees: tree %d/%d vm %d/%d", label, tr.Allocs, tr.Frees, vr.Allocs, vr.Frees)
	}
	if tr.AllocsByFn != vr.AllocsByFn {
		t.Errorf("%s: allocs by fn: tree %v vm %v", label, tr.AllocsByFn, vr.AllocsByFn)
	}
}

// diffEngines runs the same input sequence through all three engines —
// each over its own backend from mk, so heap state evolves
// independently but identically — and requires bit-identical
// observables, including the backends' total cycle accounts after
// every request. The tier-up Machine runs with threshold 1, so every
// function crosses from the cold tier to closure code mid-corpus and
// both tiers are differentially covered in one sweep.
func diffEngines(t *testing.T, p *Program, coder *encoding.Coder, cfg Config, mk func(t *testing.T) HeapBackend, inputs [][]byte) {
	t.Helper()
	cfg.Coder = coder

	tcfg := cfg
	tcfg.Backend = mk(t)
	it, err := New(p, tcfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := Compile(p, coder)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	vcfg := cfg
	vcfg.Backend = mk(t)
	vm, err := NewVM(c, vcfg)
	if err != nil {
		t.Fatal(err)
	}

	mcfg := cfg
	mcfg.Backend = mk(t)
	mcfg.TierUp = 1
	mach, err := NewMachine(c, mcfg)
	if err != nil {
		t.Fatal(err)
	}

	for i, in := range inputs {
		tr, terr := it.Run(in)
		vr, verr := vm.Run(in)
		mr, merr := mach.Run(in)
		label := strings.TrimSpace(p.Name) + "#" + string(rune('0'+i))
		assertSameRun(t, label, tr, vr, terr, verr)
		assertSameRun(t, label+"/compiled", tr, mr, terr, merr)
		if tc, vc, mc := tcfg.Backend.Cycles(), vcfg.Backend.Cycles(), mcfg.Backend.Cycles(); tc != vc || tc != mc {
			t.Errorf("%s#%d: backend cycles diverge: tree %d vm %d compiled %d", p.Name, i, tc, vc, mc)
		}
	}
	if len(inputs) > 1 && mach.Promotions() == 0 {
		t.Errorf("%s: machine never tiered up over %d inputs (threshold 1)", p.Name, len(inputs))
	}
}

// diffProgArith exercises every binary operator (including division
// and modulo by zero and oversized shifts), globals, input-length
// expressions, and nested expression trees that force temporaries.
func diffProgArith() *Program {
	ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpAnd, OpOr, OpXor, OpShl, OpShr, OpLt, OpLe, OpEq, OpNe, OpGt, OpGe}
	body := []Stmt{
		ReadInput{Dst: "a", N: C(8)},
		ReadInput{Dst: "b", N: C(8)},
	}
	for _, op := range ops {
		body = append(body,
			Assign{Dst: "r", E: Bin{Op: op, A: V("a"), B: V("b")}},
			OutputVar{Src: "r"},
		)
	}
	body = append(body,
		// Division/modulo by zero and a shift of 64+ bits.
		Assign{Dst: "z", E: Bin{Op: OpDiv, A: V("a"), B: C(0)}},
		Assign{Dst: "z", E: Bin{Op: OpMod, A: V("z"), B: C(0)}},
		Assign{Dst: "z", E: Bin{Op: OpShl, A: V("a"), B: C(200)}},
		OutputVar{Src: "z"},
		// Deep expression tree: temporaries on both operand sides.
		Assign{Dst: "t", E: Bin{Op: OpAdd,
			A: Bin{Op: OpMul, A: Bin{Op: OpAdd, A: V("a"), B: C(3)}, B: V("b")},
			B: Bin{Op: OpXor, A: V("b"), B: Bin{Op: OpSub, A: V("a"), B: C(1)}}}},
		OutputVar{Src: "t"},
		// Globals: read-before-write defaults to zero.
		Assign{Dst: "g0", E: Global{Name: "counter"}},
		OutputVar{Src: "g0"},
		SetGlobal{Dst: "counter", E: Bin{Op: OpAdd, A: Global{Name: "counter"}, B: C(7)}},
		Assign{Dst: "g1", E: Global{Name: "counter"}},
		OutputVar{Src: "g1"},
		// Input introspection.
		Assign{Dst: "il", E: InputLen{}},
		Assign{Dst: "ir", E: InputRemaining{}},
		OutputVar{Src: "il"},
		OutputVar{Src: "ir"},
		Return{E: Bin{Op: OpAdd, A: V("t"), B: V("il")}},
	)
	return MustLink(&Program{
		Name:  "diff-arith",
		Funcs: map[string]*Func{"main": {Body: body}},
	})
}

// diffProgHeap exercises every heap and memory statement: all alloc
// APIs, realloc, free, loads and stores in every flavor (including nil
// and non-nil offsets, partial-width stores, store-bytes), memcpy,
// memset, and output from memory.
func diffProgHeap() *Program {
	return MustLink(&Program{
		Name: "diff-heap",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				Alloc{Dst: "q", Fn: heapsim.FnCalloc, Size: C(8), N: C(4)},
				Alloc{Dst: "r", Fn: heapsim.FnMemalign, Size: C(32), Align: C(64)},
				Alloc{Dst: "x", Size: C(16), CCID: C(0xABCD)},
				Memset{Dst: V("p"), B: C(0x5A), N: C(64)},
				Store{Base: V("p"), Src: C(0x1122334455667788)},
				Store{Base: V("p"), Off: C(8), Src: C(0xDEAD), N: C(2)},
				StoreBytes{Base: V("p"), Off: C(10), Data: []byte("hello")},
				Assign{Dst: "v", E: C(0xCAFEBABE)},
				StoreVar{Base: V("p"), Off: C(16), Src: "v"},
				Load{Dst: "w", Base: V("p"), N: C(24)},
				OutputVar{Src: "w"},
				Load{Dst: "w8", Base: V("p"), Off: C(8), N: C(8)},
				OutputVar{Src: "w8"},
				Memcpy{Dst: V("q"), Src: V("p"), N: C(24)},
				Output{Base: V("q"), N: C(24)},
				ReallocStmt{Dst: "p2", Ptr: V("p"), Size: C(128)},
				Output{Base: V("p2"), Off: C(10), N: C(5)},
				ReadInput{Dst: "in", N: C(4)},
				StoreVar{Base: V("r"), Src: "in"},
				Output{Base: V("r"), N: C(4)},
				FreeStmt{Ptr: V("p2")},
				FreeStmt{Ptr: V("q")},
				FreeStmt{Ptr: V("r")},
				FreeStmt{Ptr: V("x")},
				Return{E: V("w")},
			}},
		},
	})
}

// diffProgCalls exercises the call superinstructions: argument
// passing, return values into variables, void calls that still define
// their destination, recursion, and calls under branches and loops.
func diffProgCalls() *Program {
	return MustLink(&Program{
		Name: "diff-calls",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "n", N: C(1)},
				Call{Dst: "s", Callee: "sum", Args: []Expr{V("n"), C(0)}},
				OutputVar{Src: "s"},
				Call{Dst: "void", Callee: "noop"},
				OutputVar{Src: "void"},
				Assign{Dst: "i", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(3)}, Body: []Stmt{
					Call{Dst: "h", Callee: "hot", Args: []Expr{V("i")}},
					OutputVar{Src: "h"},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				If{Cond: V("s"), Then: []Stmt{
					Call{Dst: "t", Callee: "hot", Args: []Expr{V("s")}},
					OutputVar{Src: "t"},
				}, Else: []Stmt{
					Call{Dst: "t", Callee: "hot", Args: []Expr{C(99)}},
					OutputVar{Src: "t"},
				}},
				Return{E: V("s")},
			}},
			"sum": {Params: []string{"n", "acc"}, Body: []Stmt{
				If{Cond: V("n"), Then: []Stmt{
					Call{Dst: "r", Callee: "sum", Args: []Expr{
						Bin{Op: OpSub, A: V("n"), B: C(1)},
						Bin{Op: OpAdd, A: V("acc"), B: V("n")},
					}},
					Return{E: V("r")},
				}},
				Return{E: V("acc")},
			}},
			"hot": {Params: []string{"x"}, Body: []Stmt{
				Alloc{Dst: "b", Size: C(24)},
				Store{Base: V("b"), Src: Bin{Op: OpMul, A: V("x"), B: C(17)}},
				Load{Dst: "y", Base: V("b"), N: C(8)},
				FreeStmt{Ptr: V("b")},
				Return{E: V("y")},
			}},
			"noop": {Body: []Stmt{Nop{}}},
		},
	})
}

// diffProgCrash faults: an out-of-space load terminates the run with
// Result.Fault on both engines, with identical partial output and
// statistics.
func diffProgCrash() *Program {
	return MustLink(&Program{
		Name: "diff-crash",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				Store{Base: V("p"), Src: C(42)},
				Output{Base: V("p"), N: C(8)},
				Load{Dst: "boom", Base: C(1 << 40), N: C(8)},
				OutputVar{Src: "boom"}, // never reached
			}},
		},
	})
}

func TestVMDifferentialNative(t *testing.T) {
	inputs := [][]byte{
		nil,
		{1},
		{5},
		bytes.Repeat([]byte{0xA5}, 16),
		[]byte("hello world, heap"),
	}
	for _, p := range []*Program{diffProgArith(), diffProgHeap(), diffProgCalls(), diffProgCrash()} {
		t.Run(p.Name, func(t *testing.T) {
			diffEngines(t, p, nil, Config{}, newNative, inputs)
		})
	}
}

// TestVMDifferentialEncoded runs the context-sensitive corpus programs
// under every scheme x encoder combination and additionally requires
// the allocation-time CCID streams to be identical (via a recording
// wrapper that hides the bulk-loader, also covering the VM's
// non-BulkLoader load path).
func TestVMDifferentialEncoded(t *testing.T) {
	for _, p := range []*Program{ccidProgram(), diffProgCalls(), diffProgHeap()} {
		for _, scheme := range encoding.AllSchemes() {
			for _, kind := range encoding.AllEncoders() {
				plan, err := encoding.NewPlan(scheme, p.Graph(), p.Targets())
				if err != nil {
					t.Fatal(err)
				}
				coder, err := encoding.NewCoder(kind, p.Graph(), plan)
				if err != nil {
					t.Fatal(err)
				}
				var recs []*recordingBackend
				mk := func(t *testing.T) HeapBackend {
					rb := &recordingBackend{HeapBackend: newNative(t)}
					recs = append(recs, rb)
					return rb
				}
				diffEngines(t, p, coder, Config{}, mk, [][]byte{{3}, {0}, {7}})
				if len(recs) != 3 {
					t.Fatalf("expected 3 backends, got %d", len(recs))
				}
				tree := recs[0]
				for ei, eng := range recs[1:] {
					name := []string{"vm", "compiled"}[ei]
					if len(tree.ccids) != len(eng.ccids) {
						t.Fatalf("%s %v/%v: ccid stream lengths differ: tree %d %s %d",
							p.Name, scheme, kind, len(tree.ccids), name, len(eng.ccids))
					}
					for i := range tree.ccids {
						if tree.ccids[i] != eng.ccids[i] {
							t.Errorf("%s %v/%v: ccid[%d]: tree %#x %s %#x",
								p.Name, scheme, kind, i, tree.ccids[i], name, eng.ccids[i])
						}
					}
				}
			}
		}
	}
}

// TestVMErrorsMatchTree: malformed programs abort both engines with
// the exact same error text, including the evaluation-order-sensitive
// undefined-variable cases the compiler pins with opCheckVar.
func TestVMErrorsMatchTree(t *testing.T) {
	cases := []struct {
		name string
		p    *Program
		cfg  Config
	}{
		{"undef-assign", MustLink(&Program{Name: "e1", Funcs: map[string]*Func{
			"main": {Body: []Stmt{Assign{Dst: "x", E: V("ghost")}}},
		}}), Config{}},
		{"undef-order-left-first", MustLink(&Program{Name: "e2", Funcs: map[string]*Func{
			// Both operands undefined: the LEFT one must be reported.
			"main": {Body: []Stmt{Assign{Dst: "x", E: Bin{Op: OpAdd, A: V("left"), B: V("right")}}}},
		}}), Config{}},
		{"undef-leaf-before-compound", MustLink(&Program{Name: "e3", Funcs: map[string]*Func{
			// Undefined leaf var precedes a compound operand that would
			// also fail: the leaf is evaluated (and must fail) first.
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: V("sz"), N: Bin{Op: OpAdd, A: V("alsoghost"), B: C(1)}},
			}},
		}}), Config{}},
		{"undef-compound-before-leaf", MustLink(&Program{Name: "e4", Funcs: map[string]*Func{
			// Compound operand fails before the trailing undefined leaf.
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: Bin{Op: OpAdd, A: V("ghost"), B: C(1)}, N: V("trailing")},
			}},
		}}), Config{}},
		{"undef-storevar", MustLink(&Program{Name: "e5", Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(16)},
				StoreVar{Base: V("p"), Src: "ghost"},
			}},
		}}), Config{}},
		{"undef-outputvar", MustLink(&Program{Name: "e6", Funcs: map[string]*Func{
			"main": {Body: []Stmt{OutputVar{Src: "ghost"}}},
		}}), Config{}},
		{"arg-count", MustLink(&Program{Name: "e7", Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "f", Args: []Expr{C(1), C(2)}}}},
			"f":    {Params: []string{"one"}, Body: []Stmt{Nop{}}},
		}}), Config{}},
		{"step-limit", MustLink(&Program{Name: "e8", Funcs: map[string]*Func{
			"main": {Body: []Stmt{While{Cond: C(1), Body: []Stmt{Nop{}}}}},
		}}), Config{MaxSteps: 1000}},
		{"depth-limit", MustLink(&Program{Name: "e9", Funcs: map[string]*Func{
			"main": {Body: []Stmt{Call{Callee: "rec"}}},
			"rec":  {Body: []Stmt{Call{Callee: "rec"}}},
		}}), Config{MaxDepth: 50}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Two identical runs: with the Machine's threshold of 1, the
			// first hits each error on the cold tier and the second on
			// closure code, so both tiers must reproduce the exact text.
			diffEngines(t, tc.p, nil, tc.cfg, newNative, [][]byte{nil, nil})
		})
	}
}

// TestVMDifferentialThreads: RunThreads must be bit-identical across
// engines — the cooperative schedule yields at the same statement
// boundaries, so the shared backend sees the same interleaved
// operation sequence.
func TestVMDifferentialThreads(t *testing.T) {
	p := diffProgCalls()
	inputs := [][]byte{{4}, {2}, {7}, {1}}

	plan, err := encoding.NewPlan(encoding.SchemeTCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCCE, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}

	run := func(engine Engine) ([]*Result, uint64) {
		backend := newNative(t)
		// TierUp 1 makes compiled-engine threads promote functions while
		// sibling threads are mid-quantum on the cold tier, over one
		// shared ClosureCache (see RunThreads).
		res, err := RunThreads(p, Config{Backend: backend, Coder: coder, Engine: engine, TierUp: 1}, inputs, 16)
		if err != nil {
			t.Fatal(err)
		}
		return res, backend.Cycles()
	}
	tres, tcyc := run(EngineTree)
	vres, vcyc := run(EngineVM)
	mres, mcyc := run(EngineCompiled)
	for i := range tres {
		assertSameRun(t, "thread", tres[i], vres[i], nil, nil)
		assertSameRun(t, "thread/compiled", tres[i], mres[i], nil, nil)
	}
	if tcyc != vcyc || tcyc != mcyc {
		t.Errorf("shared backend cycles: tree %d vm %d compiled %d", tcyc, vcyc, mcyc)
	}
}

// TestCompiledSharedAcrossGoroutines: one Compiled program must be
// safely shareable by concurrently-running VMs (each with its own
// backend) — the fleet's layout. Run under -race this is the data-race
// proof; in all modes it checks cross-VM result consistency.
func TestCompiledSharedAcrossGoroutines(t *testing.T) {
	p := diffProgCalls()
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewExec(p, Config{Backend: newNative(t)})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run([]byte{5})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			space, err := mem.NewSpace(mem.Config{})
			if err != nil {
				errs[g] = err
				return
			}
			backend, err := NewNativeBackend(space)
			if err != nil {
				errs[g] = err
				return
			}
			vm, err := NewVM(c, Config{Backend: backend})
			if err != nil {
				errs[g] = err
				return
			}
			for i := 0; i < 50; i++ {
				res, err := vm.Run([]byte{5})
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(res.Output, want.Output) || res.Cycles != want.Cycles {
					errs[g] = errStr("goroutine diverged from reference run")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

type errStr string

func (e errStr) Error() string { return string(e) }

// pinProgram is the interpreter-bound pin workload: it receives a heap
// address through its input and hammers loads, stores, arithmetic,
// calls, and output over it — no allocation statements, so the
// measurement isolates the VM's own steady-state behavior.
func pinProgram(iters uint64) *Program {
	return MustLink(&Program{
		Name: "pin",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				ReadInput{Dst: "pbuf", N: C(8)},
				Assign{Dst: "p", E: Bin{Op: OpAdd, A: V("pbuf"), B: C(0)}},
				Assign{Dst: "i", E: C(0)},
				Assign{Dst: "acc", E: C(0)},
				While{Cond: Bin{Op: OpLt, A: V("i"), B: C(iters)}, Body: []Stmt{
					Store{Base: V("p"), Off: Bin{Op: OpAnd, A: V("i"), B: C(56)}, Src: V("i")},
					Load{Dst: "x", Base: V("p"), Off: Bin{Op: OpAnd, A: V("i"), B: C(56)}, N: C(8)},
					Call{Dst: "acc", Callee: "mix", Args: []Expr{V("acc"), V("x")}},
					Assign{Dst: "i", E: Bin{Op: OpAdd, A: V("i"), B: C(1)}},
				}},
				OutputVar{Src: "acc"},
				Return{E: V("acc")},
			}},
			"mix": {Params: []string{"a", "b"}, Body: []Stmt{
				Return{E: Bin{Op: OpXor, A: Bin{Op: OpMul, A: V("a"), B: C(31)}, B: V("b")}},
			}},
		},
	})
}

// pinSetup leaks one buffer on the backend's heap and returns its
// address encoded as the pin program's input.
func pinSetup(t *testing.T, backend HeapBackend) []byte {
	t.Helper()
	setup := MustLink(&Program{
		Name: "pin-setup",
		Funcs: map[string]*Func{
			"main": {Body: []Stmt{
				Alloc{Dst: "p", Size: C(64)},
				Memset{Dst: V("p"), B: C(0), N: C(64)},
				Return{E: V("p")},
			}},
		},
	})
	it, err := New(setup, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	res, err := it.Run(nil)
	if err != nil || res.Crashed() {
		t.Fatalf("pin setup: %v / %v", err, res)
	}
	in := make([]byte, 8)
	binary.LittleEndian.PutUint64(in, res.Returned.Uint())
	return in
}

// TestVMSteadyStateZeroAlloc pins the tentpole property: once warm,
// RunReuse allocates nothing — registers, frames, output, and the
// Result all recycle their buffers.
func TestVMSteadyStateZeroAlloc(t *testing.T) {
	p := pinProgram(64)
	backend := newNative(t)
	input := pinSetup(t, backend)

	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	var res Result
	// Warm the buffer pools.
	if err := vm.RunReuse(&res, input); err != nil {
		t.Fatal(err)
	}
	if res.Crashed() {
		t.Fatalf("pin run crashed: %v", res.Fault)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := vm.RunReuse(&res, input); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state RunReuse allocates %.1f objects/run, want 0", allocs)
	}
}

// TestVMMatchesTreeOnPin: the pin workload is also differentially
// checked (it drives the fused load/store path hard).
func TestVMMatchesTreeOnPin(t *testing.T) {
	p := pinProgram(128)
	mkReady := func(t *testing.T) HeapBackend { return newNative(t) }
	// Same leaked-buffer setup must run on each engine's backend; do it
	// via a shared wrapper factory that performs setup on creation.
	var inputs [][]byte
	mk := func(t *testing.T) HeapBackend {
		b := mkReady(t)
		in := pinSetup(t, b)
		if inputs == nil {
			inputs = [][]byte{in}
		} else if !bytes.Equal(inputs[0], in) {
			t.Fatalf("pin setup addresses diverge: %x vs %x", inputs[0], in)
		}
		return b
	}
	tb := mk(t)
	vb := mk(t)
	it, err := New(p, Config{Backend: tb})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: vb})
	if err != nil {
		t.Fatal(err)
	}
	tr, terr := it.Run(inputs[0])
	vr, verr := vm.Run(inputs[0])
	assertSameRun(t, "pin", tr, vr, terr, verr)
}

func TestParseEngine(t *testing.T) {
	for _, e := range AllEngines() {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	// The CLIs forward this error verbatim as their usage message, so
	// it must list every valid spelling.
	_, err := ParseEngine("jit")
	if err == nil || !strings.Contains(err.Error(), "valid: tree, vm, compiled") {
		t.Errorf("ParseEngine(jit) err = %v, want valid-name list", err)
	}
}

func TestNewExecEngines(t *testing.T) {
	p := diffProgArith()
	for _, e := range AllEngines() {
		ex, err := NewExec(p, Config{Backend: newNative(t), Engine: e})
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		if _, err := ex.Run([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
			t.Fatalf("%v: %v", e, err)
		}
	}
	if _, err := NewExec(p, Config{Backend: newNative(t), Engine: Engine(99)}); err == nil {
		t.Error("NewExec with bogus engine succeeded")
	}
}

func TestNewVMValidation(t *testing.T) {
	// diffProgHeap has allocation sites, so an encoding plan exists.
	p := diffProgHeap()
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVM(nil, Config{Backend: newNative(t)}); err == nil {
		t.Error("NewVM(nil) succeeded")
	}
	if _, err := NewVM(c, Config{}); err == nil {
		t.Error("NewVM without backend succeeded")
	}
	plan, err := encoding.NewPlan(encoding.SchemeFCS, p.Graph(), p.Targets())
	if err != nil {
		t.Fatal(err)
	}
	coder, err := encoding.NewCoder(encoding.EncoderPCC, p.Graph(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVM(c, Config{Backend: newNative(t), Coder: coder}); err == nil {
		t.Error("NewVM with mismatched coder succeeded")
	}
	if _, err := Compile(&Program{Name: "unlinked", Funcs: map[string]*Func{"main": {}}}, nil); err == nil {
		t.Error("Compile of unlinked program succeeded")
	}
}

// TestVMSiteProfile: the verdict inline caches count allocations per
// site; without a PatchProber backend, patched counts stay zero.
func TestVMSiteProfile(t *testing.T) {
	p := diffProgCalls()
	c, err := Compile(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(c, Config{Backend: newNative(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vm.Run([]byte{2}); err != nil {
		t.Fatal(err)
	}
	prof := vm.SiteProfile()
	if len(prof) == 0 {
		t.Fatal("no alloc sites profiled")
	}
	var total uint64
	for _, s := range prof {
		total += s.Allocs
		if s.PatchedAllocs != 0 {
			t.Errorf("site %d: patched %d without a prober", s.Site, s.PatchedAllocs)
		}
	}
	// hot() allocates once per invocation: 3 loop calls + 1 branch call.
	if total != 4 {
		t.Errorf("profiled allocs = %d, want 4", total)
	}
}
