package prog

// Virtual-cycle cost model. Wall-clock timing of the interpreter is
// dominated by Go dispatch overhead, which would drown the few-percent
// effects the paper measures (0.4%-5.2% on native x86). The interpreter
// therefore also accounts deterministic "virtual cycles" per operation,
// calibrated to rough x86-64 instruction budgets, and the benchmark
// harness reports overheads on this axis (wall-clock numbers are
// reported too, for reference). The model's absolute values are
// arbitrary; only ratios matter, and the ratios reproduce the paper's
// shape because they assign real relative costs: an allocation is tens
// of cycles, an encoding update is a couple, interposition adds a call
// frame, metadata maintenance adds header writes, and a patched
// allocation adds an mprotect.
const (
	// CycStmt is the base cost of any statement (dispatch+ALU).
	CycStmt = 1
	// CycCall is a function call/return pair.
	CycCall = 4
	// CycAlloc approximates a malloc-family call in the allocator.
	CycAlloc = 60
	// CycFree approximates free in the allocator.
	CycFree = 40
	// CycMemOp is the fixed cost of a load/store/copy operation.
	CycMemOp = 2
	// CycBytesPerCycle is the copy bandwidth (bytes per cycle).
	CycBytesPerCycle = 16
	// CycEncUpdatePCC is V = 3*t + c plus the restoring move.
	CycEncUpdatePCC = 3
	// CycEncUpdateAdditive is V = t + c plus the restoring move.
	CycEncUpdateAdditive = 2
	// CycEncPrologue is reading V into t at function entry.
	CycEncPrologue = 1
)
