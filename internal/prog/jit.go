package prog

// The tier-up compiled engine (EngineCompiled): the third execution
// tier after the tree-walker and the bytecode VM. A Machine starts
// every function on a cold tier that interprets the same flat
// bytecode the VM executes, counts invocations per function, and —
// once a function's call count reaches the tier-up threshold —
// lowers that function's instruction range into a chain of Go
// closures (threaded code) built once and cached. The closure code
// bakes in everything that is static at closure-compile time:
//
//   - operand kinds: register indexes and interned constants are
//     resolved to direct accessors, so the per-instruction operand
//     decode (sign check + constant-pool indirection) disappears;
//   - encoding.SiteUpdate deltas: each instrumented call/alloc site's
//     V-update becomes plain integer arithmetic (V = 3*t + c or
//     V = t + c), exactly the instruction an instrumentation pass
//     would embed in a real binary;
//   - backend shape: CheckUse elision (UseObserver), the bulk-load
//     path (BulkLoader), and patch-verdict probing (PatchProber) are
//     decided once per backend shape instead of per instruction;
//   - superinstructions: a compare feeding a conditional branch, a
//     binary op feeding the loop-latch jump, and chained binary-op
//     pairs fuse into single closures, cutting dispatches on the
//     loop-head path the VM pays every iteration.
//
// The step calling convention is deliberately thin: a step returns
// only the next step index. Faults are rare, so instead of returning
// an error interface pair from every step, a step that faults stages
// the error in Machine.trap and returns the stepFault sentinel; the
// driver unwraps it off the hot path.
//
// The generation-revalidated patch-verdict inline caches are carried
// over from the VM design unchanged (noteAlloc / siteIC / SiteProfile
// operate on the same per-machine cache slots from both tiers).
//
// Everything observable through Run is bit-identical to the
// tree-walker and the VM — outputs, return values, faults, error text
// and order, statistics, and cycle accounting — regardless of when
// (or whether) promotion happens; the differential suites enforce it.
// Closure code never captures the executing Machine, only immutable
// Compiled data, so one ClosureCache is shared by any number of
// Machines (fleet workers, interpreter threads) with the cache lock
// taken only at promotion time, never on the execution hot path.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// DefaultTierUp is the default promotion threshold: the number of
// times a function executes on the cold (bytecode) tier before it is
// compiled to closures.
const DefaultTierUp = 2

// closStep is one compiled step. It executes and returns the index of
// the next step within the function, stepReturn when the function
// returns (the return value staged in Machine.retv), or stepFault
// when execution must abort (the error staged in Machine.trap).
type closStep = func(m *Machine, f *frameV) int32

// stepReturn is the "function returned" sentinel next-index;
// stepFault aborts the activation with the error in Machine.trap.
const (
	stepReturn int32 = -1
	stepFault  int32 = -2
)

// closShape is the backend specialization key: closure code compiled
// for one shape elides/bakes different backend interactions, so a
// cache keeps one compiled body per (function, shape).
type closShape struct {
	checkUse bool
	bulk     bool
	prober   bool
}

// ClosureCache shares closure-compiled function bodies across every
// Machine executing the same Compiled program. The cache lock is
// taken only when a function is promoted (and at most once per
// (function, backend shape)); executing compiled code never touches
// it. Fleet workers and RunThreads groups share one cache so a
// function promoted by one worker is free for all others.
type ClosureCache struct {
	c       *Compiled
	mu      sync.Mutex
	byShape map[closShape][][]closStep
}

// NewClosureCache creates an empty cache for c's functions. Machines
// using it must execute the same Compiled (NewMachine validates).
func NewClosureCache(c *Compiled) *ClosureCache {
	return &ClosureCache{c: c}
}

// compiledFor returns (compiling on first demand) fn's closure code
// specialized for the given backend shape.
func (cc *ClosureCache) compiledFor(shape closShape, fnIdx int32) []closStep {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	fns := cc.byShape[shape]
	if fns == nil {
		if cc.byShape == nil {
			cc.byShape = make(map[closShape][][]closStep)
		}
		fns = make([][]closStep, len(cc.c.funcs))
		cc.byShape[shape] = fns
	}
	if fns[fnIdx] == nil {
		fc := &fnCompiler{c: cc.c, fn: fnIdx, shape: shape}
		fns[fnIdx] = fc.compile()
	}
	return fns[fnIdx]
}

// Machine is the tier-up engine: VM-identical state and semantics,
// with per-function promotion from bytecode to closure code. Like the
// VM it is single-goroutine; many Machines can share one Compiled and
// one ClosureCache.
type Machine struct {
	vm        VM
	threshold uint64   // cold executions before a function tiers up
	calls     []uint64 // per-function invocation counts (across runs)
	code      [][]closStep
	cache     *ClosureCache
	shape     closShape
	promos    uint64
	retv      *Value // staging between a ret step and its driver
	trap      error  // staging between a faulting step and its driver

	// Unboxed scalar return staging: a compiled ret step whose value is
	// a shadow-free 8-byte scalar stages it here (retScalar set, retv
	// nil) so the caller can deliver it with reg.setU instead of a byte
	// copy. retBuf materializes the top-level return value.
	retU      uint64
	retScalar bool
	retBuf    Value

	// tickSlowAt folds the step-limit and scheduling-hook checks into
	// one compare on mtick's hot path: vm.maxSteps normally, 0 when a
	// yield hook is installed (every tick must consider the hook).
	tickSlowAt uint64
}

var _ Exec = (*Machine)(nil)
var _ runner = (*Machine)(nil)

// NewMachine binds a compiled program to a backend on the tier-up
// engine. cfg.Coder must be the coder the program was compiled with;
// cfg.TierUp sets the promotion threshold (0 = DefaultTierUp);
// cfg.Closures optionally shares compiled closures with other
// Machines over the same Compiled. cfg.Engine is ignored.
func NewMachine(c *Compiled, cfg Config) (*Machine, error) {
	vm, err := NewVM(c, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Closures != nil && cfg.Closures.c != c {
		return nil, errors.New("prog: Config.Closures cache was built for a different Compiled program")
	}
	m := &Machine{
		vm:        *vm,
		threshold: cfg.TierUp,
		calls:     make([]uint64, len(c.funcs)),
		code:      make([][]closStep, len(c.funcs)),
		cache:     cfg.Closures,
	}
	if m.threshold == 0 {
		m.threshold = DefaultTierUp
	}
	if m.cache == nil {
		m.cache = NewClosureCache(c)
	}
	m.shape = closShape{
		checkUse: m.vm.checkUse,
		bulk:     m.vm.bulk != nil,
		prober:   m.vm.prober != nil,
	}
	m.tickSlowAt = m.vm.maxSteps
	return m, nil
}

// setSchedHook implements the runner contract (see RunThreads). Both
// tiers check the hook at every statement tick, so quantum boundaries
// are identical to the other engines.
func (m *Machine) setSchedHook(every uint64, fn func()) {
	m.vm.setSchedHook(every, fn)
	if fn != nil {
		m.tickSlowAt = 0
	} else {
		m.tickSlowAt = m.vm.maxSteps
	}
}

// SiteProfile reports the per-allocation-site profile; both tiers
// feed the same verdict inline caches, so the profile is independent
// of when promotion happened.
func (m *Machine) SiteProfile() []SiteStats { return m.vm.SiteProfile() }

// Promotions reports how many functions this Machine has tiered up to
// closure code so far (monotonic across runs).
func (m *Machine) Promotions() uint64 { return m.promos }

// Threshold reports the effective tier-up threshold.
func (m *Machine) Threshold() uint64 { return m.threshold }

// Run executes the program on the given input; semantics are
// identical to Interp.Run and VM.Run.
func (m *Machine) Run(input []byte) (*Result, error) {
	res := &Result{}
	if err := m.run(res, input); err != nil {
		return nil, err
	}
	return res, nil
}

// RunReuse is Run recycling res's buffers (see VM.RunReuse); the
// steady-state compiled path allocates nothing.
func (m *Machine) RunReuse(res *Result, input []byte) error {
	return m.run(res, input)
}

func (m *Machine) run(res *Result, input []byte) error {
	vm := &m.vm
	vm.input = input
	vm.inPos = 0
	vm.output = res.Output[:0]
	vm.v = 0
	vm.steps = 0
	vm.cycles = 0
	vm.encUpdates = 0
	vm.allocs = 0
	vm.allocsByFn = [8]uint64{}
	vm.frees = 0
	vm.fault = nil
	for i := range vm.globals {
		vm.globals[i].def = false
	}
	vm.nframes = 0
	m.retv = nil
	m.trap = nil
	m.retScalar = false
	res.Returned = Value{}
	startCycles := vm.backend.Cycles()

	f := vm.pushFrame(0, 0, opndNone)
	rv, err := m.invoke(0, f)
	if err == nil {
		if m.retScalar {
			m.retScalar = false
			if cap(m.retBuf.Bytes) < 8 {
				m.retBuf.Bytes = make([]byte, 8)
			}
			m.retBuf.Bytes = m.retBuf.Bytes[:8]
			binary.LittleEndian.PutUint64(m.retBuf.Bytes, m.retU)
			rv = &m.retBuf
		}
		vm.setReturned(res, rv)
	}
	// Both tiers count steps without charging the per-statement cycle
	// cost (see mtick); settle it in one multiply so cycle totals match
	// the other engines exactly.
	vm.cycles += CycStmt * vm.steps
	res.Output = vm.output
	res.Steps = vm.steps
	res.EncUpdates = vm.encUpdates
	res.Allocs = vm.allocs
	res.AllocsByFn = vm.allocsByFn
	res.Frees = vm.frees
	res.InterpCycles = vm.cycles
	res.Cycles = vm.cycles + (vm.backend.Cycles() - startCycles)
	res.Fault = nil
	if err != nil {
		if errors.Is(err, errCrashed) {
			res.Fault = vm.fault
			return nil
		}
		return err
	}
	return nil
}

// invoke runs one activation of funcs[fnIdx] in frame f, choosing the
// tier: closure code if the function is promoted, promoting it first
// if its call count just reached the threshold, else the cold
// bytecode tier. The count increments per invocation, so "threshold
// N" means N cold executions before the N+1st runs compiled.
func (m *Machine) invoke(fnIdx int32, f *frameV) (*Value, error) {
	steps := m.code[fnIdx]
	if steps == nil {
		if m.calls[fnIdx] < m.threshold {
			m.calls[fnIdx]++
			return m.interpFrame(fnIdx, f)
		}
		steps = m.promote(fnIdx)
	}
	m.calls[fnIdx]++
	return m.runSteps(steps, f)
}

// promote compiles (or fetches from the shared cache) fn's closure
// code and installs it for all future invocations by this Machine.
func (m *Machine) promote(fnIdx int32) []closStep {
	steps := m.cache.compiledFor(m.shape, fnIdx)
	m.code[fnIdx] = steps
	m.promos++
	return steps
}

// runSteps drives one activation through compiled closure code. The
// loop is the whole hot path: one indexed load and one indirect call
// per superinstruction, with return/fault peeled off as negative
// sentinels.
func (m *Machine) runSteps(steps []closStep, f *frameV) (*Value, error) {
	var i int32
	for i >= 0 {
		i = steps[i](m, f)
	}
	if i == stepReturn {
		rv := m.retv
		m.retv = nil
		return rv, nil
	}
	err := m.trap
	m.trap = nil
	return nil, err
}

// mtick is the per-statement bookkeeping both tiers share: step
// count, step limit, and the cooperative-scheduling hook. It reports
// false — with the error staged in trap — when the step limit is hit.
// Unlike the VM's tick block it does NOT charge CycStmt here; run()
// charges CycStmt*steps once at the end, which is arithmetically
// identical and keeps this prefix inside the inlining budget.
func (m *Machine) mtick() bool {
	m.vm.steps++
	if m.vm.steps > m.tickSlowAt {
		return m.mtickSlow()
	}
	return true
}

// mtickSlow keeps the step-limit unwind and the scheduling hook out
// of mtick's inlinable hot prefix. With a yield hook installed every
// tick lands here; that is the threaded configuration, where the
// hook's own cost dominates anyway.
//
//go:noinline
func (m *Machine) mtickSlow() bool {
	vm := &m.vm
	if vm.steps > vm.maxSteps {
		return m.stepLimit()
	}
	if vm.yield != nil && vm.steps%vm.yieldEvery == 0 {
		vm.yield()
	}
	return true
}

//go:noinline
func (m *Machine) stepLimit() bool {
	m.trap = fmt.Errorf("prog %s: step limit %d exceeded", m.vm.c.p.Name, m.vm.maxSteps)
	return false
}

// takeTrap consumes the staged fault for paths that report errors by
// return value (the cold tier and invoke callers).
func (m *Machine) takeTrap() error {
	err := m.trap
	m.trap = nil
	return err
}

// callSite executes one call site from frame f — argument fetch
// through return-value delivery — dispatching the callee through the
// tier policy. The sequencing (arg errors, arity, depth, V update,
// cycle charges, prologue cost, V restore) mirrors the VM's opCall +
// opRet pair exactly.
func (m *Machine) callSite(rec *callRec, f *frameV) error {
	vm := &m.vm
	callee := &vm.c.funcs[rec.fnIdx]
	if cap(vm.args) < len(rec.args) {
		vm.args = make([]*Value, len(rec.args))
	}
	args := vm.args[:len(rec.args)]
	for i, o := range rec.args {
		v, err := vm.rd(f, o)
		if err != nil {
			return err
		}
		args[i] = v
	}
	if len(args) != int(callee.nparams) {
		return fmt.Errorf("prog %s: call to %s with %d args, want %d",
			vm.c.p.Name, callee.name, len(args), int(callee.nparams))
	}
	if vm.nframes > vm.maxDepth {
		return fmt.Errorf("prog %s: call depth limit %d exceeded", vm.c.p.Name, vm.maxDepth)
	}
	if rec.upd.Instrumented {
		vm.v = rec.upd.Apply(f.t)
		vm.encUpdates++
		vm.cycles += vm.c.encCycles
	}
	vm.cycles += CycCall
	nf := vm.pushFrame(rec.fnIdx, 0, 0)
	for i := int32(0); i < callee.nparams; i++ {
		nf.regs[i].set(args[i])
	}
	if callee.prologue {
		vm.cycles += CycEncPrologue
	}
	rv, err := m.invoke(rec.fnIdx, nf)
	if err != nil {
		return err
	}
	vm.nframes--
	// Restore discipline: V returns to the caller's context.
	vm.v = f.t
	if rec.dst != opndNone {
		if m.retScalar {
			m.retScalar = false
			f.regs[rec.dst].setU(m.retU)
		} else {
			if rv == nil {
				rv = &zeroValue
			}
			f.regs[rec.dst].set(rv)
		}
	} else {
		m.retScalar = false
	}
	return nil
}

// interpFrame is the cold tier: one activation interpreted from the
// flat bytecode. The dispatch is the VM's exec switch confined to a
// single frame — calls recurse through invoke (where tier selection
// happens) instead of threading frames through the flat loop, and
// returns unwind to the caller activation.
func (m *Machine) interpFrame(fnIdx int32, f *frameV) (*Value, error) {
	vm := &m.vm
	code := vm.c.code
	pc := vm.c.funcs[fnIdx].entry
	for {
		ins := &code[pc]
		if ins.tick {
			if !m.mtick() {
				return nil, m.takeTrap()
			}
		}
		switch ins.op {
		case opNop:
			// Costs the base step only.

		case opCheckVar:
			if !f.regs[ins.a].def {
				return nil, vm.undefVar(vm.c.funcs[f.fn].regNames[ins.a])
			}

		case opLoadK:
			f.regs[ins.dst].setScalar(vm.c.constU[^ins.a])

		case opMove:
			src, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			f.regs[ins.dst].set(src)

		case opBin:
			av, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			bv, err := vm.rd(f, ins.b)
			if err != nil {
				return nil, err
			}
			r, err := binScalar(ins.bop, av.Uint(), bv.Uint())
			if err != nil {
				return nil, err
			}
			f.regs[ins.dst].setBin(r, av, bv)

		case opInputLen:
			f.regs[ins.dst].setScalar(uint64(len(vm.input)))

		case opInputRem:
			f.regs[ins.dst].setScalar(uint64(len(vm.input) - vm.inPos))

		case opGlobalGet:
			g := &vm.globals[ins.aux]
			if g.def {
				f.regs[ins.dst].set(&g.val)
			} else {
				f.regs[ins.dst].setScalar(0)
			}

		case opGlobalSet:
			src, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			vm.globals[ins.aux].set(src)

		case opJump:
			pc = ins.aux
			continue

		case opBr:
			cv, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*cv, UseControlFlow, vm.v)
			}
			if cv.Uint() == 0 {
				pc = ins.aux
				continue
			}

		case opCall:
			if err := m.callSite(&vm.c.calls[ins.aux], f); err != nil {
				return nil, err
			}

		case opRet, opRetVoid:
			if ins.op == opRet {
				v, err := vm.rd(f, ins.a)
				if err != nil {
					return nil, err
				}
				return v, nil
			}
			return nil, nil

		case opAlloc, opRealloc:
			rec := &vm.c.allocs[ins.aux]
			var ptrOp *Value
			var err error
			if ins.op == opRealloc {
				if ptrOp, err = vm.rd(f, rec.ptr); err != nil {
					return nil, err
				}
			}
			size, err := vm.rd(f, rec.size)
			if err != nil {
				return nil, err
			}
			nv, err := vm.rd(f, rec.n)
			if err != nil {
				return nil, err
			}
			al, err := vm.rd(f, rec.align)
			if err != nil {
				return nil, err
			}
			ccid := vm.v
			switch {
			case rec.ccid != opndNone:
				cv, err := vm.rd(f, rec.ccid)
				if err != nil {
					return nil, err
				}
				ccid = cv.Uint()
				vm.encUpdates++
				vm.cycles += CycEncUpdatePCC
			case rec.upd.Instrumented:
				ccid = rec.upd.Apply(f.t)
				vm.encUpdates++
				vm.cycles += vm.c.encCycles
			}
			vm.allocs++
			vm.allocsByFn[rec.byFn]++
			var ptr uint64
			var aerr error
			if ins.op == opRealloc {
				ptr, aerr = vm.backend.Realloc(ccid, ptrOp.Uint(), size.Uint())
			} else {
				ptr, aerr = vm.backend.Alloc(rec.fn, ccid, nv.Uint(), size.Uint(), al.Uint())
			}
			if aerr != nil {
				return nil, vm.crash(aerr)
			}
			f.regs[rec.dst].setScalar(ptr)
			vm.ics[rec.ic].allocs++
			if vm.prober != nil {
				vm.noteAlloc(rec, ccid)
			}

		case opFree:
			pv, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*pv, UseAddress, vm.v)
			}
			vm.frees++
			if ferr := vm.backend.Free(pv.Uint(), vm.v); ferr != nil {
				return nil, vm.crash(ferr)
			}

		case opLoad:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return nil, err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			r := &f.regs[ins.dst]
			if vm.bulk != nil {
				if lerr := vm.loadIntoReg(r, addr, nv.Uint()); lerr != nil {
					return nil, vm.crash(lerr)
				}
			} else {
				v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
				if lerr != nil {
					return nil, vm.crash(lerr)
				}
				r.val = v
				r.uok = false
				r.def = true
			}

		case opStore:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return nil, err
			}
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			n := uint64(8)
			if ins.dst != opndNone {
				nv, err := vm.rd(f, ins.dst)
				if err != nil {
					return nil, err
				}
				n = nv.Uint()
				if n > 8 {
					n = 8
				}
			}
			if serr := vm.backend.Store(addr, src.View(0, int(n)), vm.v); serr != nil {
				return nil, vm.crash(serr)
			}

		case opStoreVar:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return nil, err
			}
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			if serr := vm.backend.Store(addr, *src, vm.v); serr != nil {
				return nil, vm.crash(serr)
			}

		case opStoreBytes:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return nil, err
			}
			if serr := vm.backend.Store(addr, vm.c.datas[ins.aux], vm.v); serr != nil {
				return nil, vm.crash(serr)
			}

		case opMemcpy:
			dst, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			src, err := vm.rd(f, ins.b)
			if err != nil {
				return nil, err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*dst, UseAddress, vm.v)
				vm.backend.CheckUse(*src, UseAddress, vm.v)
			}
			if merr := vm.backend.Memcpy(dst.Uint(), src.Uint(), nv.Uint(), vm.v); merr != nil {
				return nil, vm.crash(merr)
			}

		case opMemset:
			dst, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			bv, err := vm.rd(f, ins.b)
			if err != nil {
				return nil, err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*dst, UseAddress, vm.v)
			}
			if merr := vm.backend.Memset(dst.Uint(), byte(bv.Uint()), nv.Uint(), vm.v); merr != nil {
				return nil, vm.crash(merr)
			}

		case opReadInput:
			nv, err := vm.rd(f, ins.a)
			if err != nil {
				return nil, err
			}
			// Clamp in uint64 space (see the tree-walker's ReadInput).
			take := len(vm.input) - vm.inPos
			if nu := nv.Uint(); nu < uint64(take) {
				take = int(nu)
			}
			r := &f.regs[ins.dst]
			if cap(r.val.Bytes) < take {
				r.val.Bytes = make([]byte, take)
			} else {
				r.val.Bytes = r.val.Bytes[:take]
			}
			copy(r.val.Bytes, vm.input[vm.inPos:vm.inPos+take])
			vm.inPos += take
			r.val.Valid = nil
			r.val.Origin = nil
			r.uok = false
			r.def = true

		case opOutput:
			addr, err := vm.effAddr(f, ins.a, ins.b)
			if err != nil {
				return nil, err
			}
			nv, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			if vm.bulk != nil {
				if lerr := vm.bulk.LoadInto(&vm.scratch, addr, nv.Uint(), vm.v); lerr != nil {
					return nil, vm.crash(lerr)
				}
				if vm.checkUse {
					vm.backend.CheckUse(vm.scratch, UseOutput, vm.v)
				}
				vm.output = append(vm.output, vm.scratch.Bytes...)
				break
			}
			v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
			if lerr != nil {
				return nil, vm.crash(lerr)
			}
			if vm.checkUse {
				vm.backend.CheckUse(v, UseOutput, vm.v)
			}
			vm.output = append(vm.output, v.Bytes...)

		case opOutputVar:
			src, err := vm.rd(f, ins.c)
			if err != nil {
				return nil, err
			}
			if vm.checkUse {
				vm.backend.CheckUse(*src, UseOutput, vm.v)
			}
			vm.output = append(vm.output, src.Bytes...)

		default:
			return nil, fmt.Errorf("prog %s: unknown opcode %d", vm.c.p.Name, ins.op)
		}
		pc++
	}
}

// fetch resolves a baked operand reference: an interned constant (no
// checks) or a register with the definedness check. nil means the
// undefined-variable error (the tree-walker's exact text) is staged
// in trap. The returned Value is always materialized, so it is safe
// to hand to backends, registers, and shadow consumers.
func (m *Machine) fetch(f *frameV, o *opref) *Value {
	if o.k != nil {
		return o.k
	}
	r := &f.regs[o.idx]
	if !r.def {
		m.fetchUndef(o)
		return nil
	}
	if r.uok {
		r.materialize()
	}
	return &r.val
}

// fetchScalar is fetch's unboxed fast path. It reports scalarOK when
// the operand is a shadow-free 8-byte scalar — a baked constant, a
// cached setU scalar, or a clean materialized scalar — without
// touching byte buffers. scalarFault means the undefined-variable
// error is staged in trap; scalarBoxed means the caller must fall
// back to fetch (shadow planes or a non-8-byte value).
const (
	scalarOK int32 = iota
	scalarBoxed
	scalarFault
)

func (m *Machine) fetchScalar(f *frameV, o *opref) (uint64, int32) {
	if o.k != nil {
		return o.ku, scalarOK
	}
	r := &f.regs[o.idx]
	// uok implies the cached u is current (every byte-level write
	// clears it); def guards against a stale cache on a recycled frame
	// whose registers were reset.
	if r.uok && r.def {
		return r.u, scalarOK
	}
	return m.fetchScalarSlow(r, o)
}

// fetchScalarSlow handles the cases off fetchScalar's inlinable hot
// prefix: undefined registers, clean materialized 8-byte scalars, and
// the boxed fallback signal.
//
//go:noinline
func (m *Machine) fetchScalarSlow(r *reg, o *opref) (uint64, int32) {
	if !r.def {
		m.fetchUndef(o)
		return 0, scalarFault
	}
	if r.val.Valid == nil && r.val.Origin == nil && len(r.val.Bytes) == 8 {
		return binary.LittleEndian.Uint64(r.val.Bytes), scalarOK
	}
	return 0, scalarBoxed
}

// fetchUint resolves an operand consumed only as an integer (sizes,
// counts, addresses outside CheckUse shapes), preferring the unboxed
// path. ok=false means the undefined-variable error is staged.
func (m *Machine) fetchUint(f *frameV, o *opref) (uint64, bool) {
	if o.k != nil {
		return o.ku, true
	}
	r := &f.regs[o.idx]
	if r.uok && r.def {
		return r.u, true
	}
	return m.fetchUintSlow(f, r, o)
}

//go:noinline
func (m *Machine) fetchUintSlow(f *frameV, r *reg, o *opref) (uint64, bool) {
	u, s := m.fetchScalarSlow(r, o)
	if s == scalarOK {
		return u, true
	}
	if s == scalarFault {
		return 0, false
	}
	v := m.fetch(f, o)
	if v == nil {
		return 0, false
	}
	return v.Uint(), true
}

//go:noinline
func (m *Machine) fetchUndef(o *opref) {
	m.trap = m.vm.undefVar(o.name)
}

// opref is an operand resolved at closure-compile time: either a
// direct pointer to an interned constant (with its scalar view ku
// baked — the constant pool only holds clean 8-byte scalars) or a
// register index plus the variable name needed for the
// undefined-variable error.
type opref struct {
	idx  int32
	k    *Value
	ku   uint64
	name string
}

// fnCompiler lowers one function's instruction range into closure
// code for one backend shape. Nothing it builds captures a Machine:
// closures reference only immutable Compiled data and baked scalars,
// receiving the executing Machine and frame as parameters.
type fnCompiler struct {
	c     *Compiled
	fn    int32
	shape closShape

	entry, end int32
	stepOf     []int32 // rel pc -> step index (-1 inside a fused unit)
}

// ref bakes one instruction operand.
func (fc *fnCompiler) ref(o int32) opref {
	if o >= 0 {
		return opref{idx: o, name: fc.c.funcs[fc.fn].regNames[o]}
	}
	return opref{idx: -1, k: &fc.c.consts[^o], ku: fc.c.constU[^o]}
}

// fnRange computes [entry, end) for fn in the flat instruction
// stream: functions are emitted contiguously, so end is the smallest
// entry greater than fn's (or the end of the stream).
func fnRange(c *Compiled, fnIdx int32) (int32, int32) {
	entry := c.funcs[fnIdx].entry
	end := int32(len(c.code))
	for i := range c.funcs {
		if e := c.funcs[i].entry; e > entry && e < end {
			end = e
		}
	}
	return entry, end
}

// compile lowers the function. Two passes: the first partitions the
// range into units (fusing eligible pairs, never across a jump
// target) and assigns step indexes; the second builds the closures
// with final next/branch indexes baked in.
func (fc *fnCompiler) compile() []closStep {
	fc.entry, fc.end = fnRange(fc.c, fc.fn)
	code := fc.c.code
	n := int(fc.end - fc.entry)

	isTarget := make([]bool, n)
	for pc := fc.entry; pc < fc.end; pc++ {
		switch code[pc].op {
		case opJump, opBr:
			if t := code[pc].aux; t >= fc.entry && t < fc.end {
				isTarget[t-fc.entry] = true
			}
		}
	}

	type unit struct {
		pc    int32
		fused bool
	}
	var units []unit
	fc.stepOf = make([]int32, n)
	for pc := fc.entry; pc < fc.end; {
		u := unit{pc: pc}
		if pc+1 < fc.end && !isTarget[pc+1-fc.entry] {
			ins, nxt := &code[pc], &code[pc+1]
			switch {
			case ins.op == opBin && nxt.op == opBr && nxt.a == ins.dst:
				u.fused = true
			case ins.op == opBin && nxt.op == opJump:
				u.fused = true
			case ins.op == opBin && nxt.op == opBin:
				u.fused = true
			}
		}
		fc.stepOf[pc-fc.entry] = int32(len(units))
		units = append(units, u)
		if u.fused {
			fc.stepOf[pc+1-fc.entry] = -1
			pc += 2
		} else {
			pc++
		}
	}

	steps := make([]closStep, len(units))
	for i, u := range units {
		steps[i] = fc.build(u.pc, u.fused)
	}
	return steps
}

// stepAt maps an absolute pc to its step index. A pc at or past the
// function end cannot be produced by well-formed bytecode (every
// function is terminated by opRetVoid); map it to a bare void return
// so even hypothetical malformed code cannot index out of range.
func (fc *fnCompiler) stepAt(pc int32) int32 {
	if pc < fc.entry || pc >= fc.end {
		return stepReturn
	}
	return fc.stepOf[pc-fc.entry]
}

// build lowers the unit starting at pc (two instructions when fused).
func (fc *fnCompiler) build(pc int32, fused bool) closStep {
	c := fc.c
	ins := &c.code[pc]
	tick := ins.tick
	next := fc.stepAt(pc + 1)
	if fused {
		next = fc.stepAt(pc + 2)
	}

	if fused {
		nxt := &c.code[pc+1]
		switch nxt.op {
		case opBr:
			return fc.buildBinBr(ins, nxt, next)
		case opJump:
			return fc.buildBinJmp(ins, nxt)
		default:
			return fc.buildBinBin(ins, nxt, next)
		}
	}

	switch ins.op {
	case opNop:
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			return next
		}

	case opCheckVar:
		idx := ins.a
		name := c.funcs[fc.fn].regNames[idx]
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			if !f.regs[idx].def {
				m.trap = m.vm.undefVar(name)
				return stepFault
			}
			return next
		}

	case opLoadK:
		dst := ins.dst
		u := c.constU[^ins.a]
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			f.regs[dst].setU(u)
			return next
		}

	case opMove:
		dst := ins.dst
		a := fc.ref(ins.a)
		aConst, aku, aIdx := a.k != nil, a.ku, a.idx
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			if aConst {
				f.regs[dst].setU(aku)
				return next
			}
			if ra := &f.regs[aIdx]; ra.uok && ra.def {
				f.regs[dst].setU(ra.u)
				return next
			}
			src := m.fetch(f, &a)
			if src == nil {
				return stepFault
			}
			f.regs[dst].set(src)
			return next
		}

	case opBin:
		dst, bop := ins.dst, ins.bop
		a, b := fc.ref(ins.a), fc.ref(ins.b)
		aConst, aku, aIdx := a.k != nil, a.ku, a.idx
		bConst, bku, bIdx := b.k != nil, b.ku, b.idx
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			var au, bu uint64
			fast := true
			if aConst {
				au = aku
			} else if ra := &f.regs[aIdx]; ra.uok && ra.def {
				au = ra.u
			} else {
				fast = false
			}
			if fast {
				if bConst {
					bu = bku
				} else if rb := &f.regs[bIdx]; rb.uok && rb.def {
					bu = rb.u
				} else {
					fast = false
				}
			}
			if fast {
				r, err := binScalar(bop, au, bu)
				if err != nil {
					m.trap = err
					return stepFault
				}
				f.regs[dst].setU(r)
				return next
			}
			if !binInto(m, f, bop, &a, &b, dst) {
				return stepFault
			}
			return next
		}

	case opInputLen:
		dst := ins.dst
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			f.regs[dst].setU(uint64(len(m.vm.input)))
			return next
		}

	case opInputRem:
		dst := ins.dst
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			f.regs[dst].setU(uint64(len(m.vm.input) - m.vm.inPos))
			return next
		}

	case opGlobalGet:
		dst, aux := ins.dst, ins.aux
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			g := &m.vm.globals[aux]
			if g.def {
				f.regs[dst].set(&g.val)
			} else {
				f.regs[dst].setScalar(0)
			}
			return next
		}

	case opGlobalSet:
		aux := ins.aux
		a := fc.ref(ins.a)
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			src := m.fetch(f, &a)
			if src == nil {
				return stepFault
			}
			m.vm.globals[aux].set(src)
			return next
		}

	case opJump:
		tgt := fc.stepAt(ins.aux)
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			return tgt
		}

	case opBr:
		a := fc.ref(ins.a)
		elseIdx := fc.stepAt(ins.aux)
		if !fc.shape.checkUse {
			aConst, aku, aIdx := a.k != nil, a.ku, a.idx
			return func(m *Machine, f *frameV) int32 {
				if tick && !m.mtick() {
					return stepFault
				}
				var cv uint64
				if aConst {
					cv = aku
				} else if ra := &f.regs[aIdx]; ra.uok && ra.def {
					cv = ra.u
				} else {
					u, ok := m.fetchUintSlow(f, &f.regs[aIdx], &a)
					if !ok {
						return stepFault
					}
					cv = u
				}
				if cv == 0 {
					return elseIdx
				}
				return next
			}
		}
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			cv := m.fetch(f, &a)
			if cv == nil {
				return stepFault
			}
			m.vm.backend.CheckUse(*cv, UseControlFlow, m.vm.v)
			if cv.Uint() == 0 {
				return elseIdx
			}
			return next
		}

	case opCall:
		return fc.buildCall(ins, tick, next)

	case opRet:
		a := fc.ref(ins.a)
		aConst, aku, aIdx := a.k != nil, a.ku, a.idx
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			// Stage a scalar unboxed when possible; the call site (or
			// run's top-level unwind) consumes retU/retScalar immediately
			// after invoke returns.
			if aConst {
				m.retU = aku
				m.retScalar = true
				m.retv = nil
				return stepReturn
			}
			if ra := &f.regs[aIdx]; ra.uok && ra.def {
				m.retU = ra.u
				m.retScalar = true
				m.retv = nil
				return stepReturn
			}
			u, s := m.fetchScalarSlow(&f.regs[aIdx], &a)
			if s == scalarOK {
				m.retU = u
				m.retScalar = true
				m.retv = nil
				return stepReturn
			}
			if s == scalarFault {
				return stepFault
			}
			v := m.fetch(f, &a)
			if v == nil {
				return stepFault
			}
			m.retv = v
			return stepReturn
		}

	case opRetVoid:
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			m.retv = nil
			return stepReturn
		}

	case opAlloc, opRealloc:
		return fc.buildAlloc(ins, tick, next)

	case opFree:
		a := fc.ref(ins.a)
		if !fc.shape.checkUse {
			return func(m *Machine, f *frameV) int32 {
				if tick && !m.mtick() {
					return stepFault
				}
				pu, ok := m.fetchUint(f, &a)
				if !ok {
					return stepFault
				}
				vm := &m.vm
				vm.frees++
				if ferr := vm.backend.Free(pu, vm.v); ferr != nil {
					m.trap = vm.crash(ferr)
					return stepFault
				}
				return next
			}
		}
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			pv := m.fetch(f, &a)
			if pv == nil {
				return stepFault
			}
			vm := &m.vm
			vm.backend.CheckUse(*pv, UseAddress, vm.v)
			vm.frees++
			if ferr := vm.backend.Free(pv.Uint(), vm.v); ferr != nil {
				m.trap = vm.crash(ferr)
				return stepFault
			}
			return next
		}

	case opLoad:
		dst := ins.dst
		ea := fc.buildAddr(ins.a, ins.b)
		nref := fc.ref(ins.c)
		bulk := fc.shape.bulk
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			addr, ok := ea(m, f)
			if !ok {
				return stepFault
			}
			nv := m.fetch(f, &nref)
			if nv == nil {
				return stepFault
			}
			vm := &m.vm
			r := &f.regs[dst]
			if bulk {
				if lerr := vm.loadIntoReg(r, addr, nv.Uint()); lerr != nil {
					m.trap = vm.crash(lerr)
					return stepFault
				}
			} else {
				v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
				if lerr != nil {
					m.trap = vm.crash(lerr)
					return stepFault
				}
				r.val = v
				r.uok = false
				r.def = true
			}
			return next
		}

	case opStore:
		ea := fc.buildAddr(ins.a, ins.b)
		src := fc.ref(ins.c)
		hasN := ins.dst != opndNone
		var nref opref
		if hasN {
			nref = fc.ref(ins.dst)
		}
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			addr, ok := ea(m, f)
			if !ok {
				return stepFault
			}
			sv := m.fetch(f, &src)
			if sv == nil {
				return stepFault
			}
			n := uint64(8)
			if hasN {
				nv := m.fetch(f, &nref)
				if nv == nil {
					return stepFault
				}
				n = nv.Uint()
				if n > 8 {
					n = 8
				}
			}
			vm := &m.vm
			if serr := vm.backend.Store(addr, sv.View(0, int(n)), vm.v); serr != nil {
				m.trap = vm.crash(serr)
				return stepFault
			}
			return next
		}

	case opStoreVar:
		ea := fc.buildAddr(ins.a, ins.b)
		src := fc.ref(ins.c)
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			addr, ok := ea(m, f)
			if !ok {
				return stepFault
			}
			sv := m.fetch(f, &src)
			if sv == nil {
				return stepFault
			}
			vm := &m.vm
			if serr := vm.backend.Store(addr, *sv, vm.v); serr != nil {
				m.trap = vm.crash(serr)
				return stepFault
			}
			return next
		}

	case opStoreBytes:
		ea := fc.buildAddr(ins.a, ins.b)
		data := c.datas[ins.aux]
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			addr, ok := ea(m, f)
			if !ok {
				return stepFault
			}
			vm := &m.vm
			if serr := vm.backend.Store(addr, data, vm.v); serr != nil {
				m.trap = vm.crash(serr)
				return stepFault
			}
			return next
		}

	case opMemcpy:
		a, b, nref := fc.ref(ins.a), fc.ref(ins.b), fc.ref(ins.c)
		cu := fc.shape.checkUse
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			dv := m.fetch(f, &a)
			if dv == nil {
				return stepFault
			}
			sv := m.fetch(f, &b)
			if sv == nil {
				return stepFault
			}
			nv := m.fetch(f, &nref)
			if nv == nil {
				return stepFault
			}
			vm := &m.vm
			if cu {
				vm.backend.CheckUse(*dv, UseAddress, vm.v)
				vm.backend.CheckUse(*sv, UseAddress, vm.v)
			}
			if merr := vm.backend.Memcpy(dv.Uint(), sv.Uint(), nv.Uint(), vm.v); merr != nil {
				m.trap = vm.crash(merr)
				return stepFault
			}
			return next
		}

	case opMemset:
		a, b, nref := fc.ref(ins.a), fc.ref(ins.b), fc.ref(ins.c)
		cu := fc.shape.checkUse
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			dv := m.fetch(f, &a)
			if dv == nil {
				return stepFault
			}
			bv := m.fetch(f, &b)
			if bv == nil {
				return stepFault
			}
			nv := m.fetch(f, &nref)
			if nv == nil {
				return stepFault
			}
			vm := &m.vm
			if cu {
				vm.backend.CheckUse(*dv, UseAddress, vm.v)
			}
			if merr := vm.backend.Memset(dv.Uint(), byte(bv.Uint()), nv.Uint(), vm.v); merr != nil {
				m.trap = vm.crash(merr)
				return stepFault
			}
			return next
		}

	case opReadInput:
		dst := ins.dst
		a := fc.ref(ins.a)
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			nv := m.fetch(f, &a)
			if nv == nil {
				return stepFault
			}
			vm := &m.vm
			// Clamp in uint64 space (see the tree-walker's ReadInput).
			take := len(vm.input) - vm.inPos
			if nu := nv.Uint(); nu < uint64(take) {
				take = int(nu)
			}
			r := &f.regs[dst]
			if cap(r.val.Bytes) < take {
				r.val.Bytes = make([]byte, take)
			} else {
				r.val.Bytes = r.val.Bytes[:take]
			}
			copy(r.val.Bytes, vm.input[vm.inPos:vm.inPos+take])
			vm.inPos += take
			r.val.Valid = nil
			r.val.Origin = nil
			r.uok = false
			r.def = true
			return next
		}

	case opOutput:
		ea := fc.buildAddr(ins.a, ins.b)
		nref := fc.ref(ins.c)
		bulk, cu := fc.shape.bulk, fc.shape.checkUse
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			addr, ok := ea(m, f)
			if !ok {
				return stepFault
			}
			nv := m.fetch(f, &nref)
			if nv == nil {
				return stepFault
			}
			vm := &m.vm
			if bulk {
				if lerr := vm.bulk.LoadInto(&vm.scratch, addr, nv.Uint(), vm.v); lerr != nil {
					m.trap = vm.crash(lerr)
					return stepFault
				}
				if cu {
					vm.backend.CheckUse(vm.scratch, UseOutput, vm.v)
				}
				vm.output = append(vm.output, vm.scratch.Bytes...)
				return next
			}
			v, lerr := vm.backend.Load(addr, nv.Uint(), vm.v)
			if lerr != nil {
				m.trap = vm.crash(lerr)
				return stepFault
			}
			if cu {
				vm.backend.CheckUse(v, UseOutput, vm.v)
			}
			vm.output = append(vm.output, v.Bytes...)
			return next
		}

	case opOutputVar:
		src := fc.ref(ins.c)
		cu := fc.shape.checkUse
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			sv := m.fetch(f, &src)
			if sv == nil {
				return stepFault
			}
			vm := &m.vm
			if cu {
				vm.backend.CheckUse(*sv, UseOutput, vm.v)
			}
			vm.output = append(vm.output, sv.Bytes...)
			return next
		}

	default:
		// Unreachable for Compile-produced bytecode; preserve the VM's
		// runtime error for hypothetical malformed streams.
		op := ins.op
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			m.trap = fmt.Errorf("prog %s: unknown opcode %d", m.vm.c.p.Name, op)
			return stepFault
		}
	}
}

// buildAddr bakes an effective-address computation (base + optional
// offset with use-point checks), mirroring VM.effAddr. false means a
// fault is staged in trap.
func (fc *fnCompiler) buildAddr(a, b int32) func(m *Machine, f *frameV) (uint64, bool) {
	base := fc.ref(a)
	if !fc.shape.checkUse {
		bConst, bku, bIdx := base.k != nil, base.ku, base.idx
		if b == opndNone {
			return func(m *Machine, f *frameV) (uint64, bool) {
				if bConst {
					return bku, true
				}
				if r := &f.regs[bIdx]; r.uok && r.def {
					return r.u, true
				}
				return m.fetchUintSlow(f, &f.regs[bIdx], &base)
			}
		}
		off := fc.ref(b)
		oConst, oku, oIdx := off.k != nil, off.ku, off.idx
		return func(m *Machine, f *frameV) (uint64, bool) {
			var bu, ou uint64
			if bConst {
				bu = bku
			} else if r := &f.regs[bIdx]; r.uok && r.def {
				bu = r.u
			} else {
				u, ok := m.fetchUintSlow(f, &f.regs[bIdx], &base)
				if !ok {
					return 0, false
				}
				bu = u
			}
			if oConst {
				ou = oku
			} else if r := &f.regs[oIdx]; r.uok && r.def {
				ou = r.u
			} else {
				u, ok := m.fetchUintSlow(f, &f.regs[oIdx], &off)
				if !ok {
					return 0, false
				}
				ou = u
			}
			return bu + ou, true
		}
	}
	if b == opndNone {
		return func(m *Machine, f *frameV) (uint64, bool) {
			bv := m.fetch(f, &base)
			if bv == nil {
				return 0, false
			}
			m.vm.backend.CheckUse(*bv, UseAddress, m.vm.v)
			return bv.Uint(), true
		}
	}
	off := fc.ref(b)
	return func(m *Machine, f *frameV) (uint64, bool) {
		bv := m.fetch(f, &base)
		if bv == nil {
			return 0, false
		}
		m.vm.backend.CheckUse(*bv, UseAddress, m.vm.v)
		ov := m.fetch(f, &off)
		if ov == nil {
			return 0, false
		}
		m.vm.backend.CheckUse(*ov, UseAddress, m.vm.v)
		return bv.Uint() + ov.Uint(), true
	}
}

// buildCall bakes one call site: static arity, the SiteUpdate as
// plain integer arithmetic, and the callee's prologue cost. The
// callee dispatches through invoke, so tier-up applies per function
// even in the middle of a caller's compiled activation. Arities up to
// four stage arguments in a stack buffer instead of the VM's shared
// slice.
func (fc *fnCompiler) buildCall(ins *instr, tick bool, next int32) closStep {
	c := fc.c
	rec := &c.calls[ins.aux]
	callee := &c.funcs[rec.fnIdx]
	argRefs := make([]opref, len(rec.args))
	for i, o := range rec.args {
		argRefs[i] = fc.ref(o)
	}
	fnIdx, dst := rec.fnIdx, rec.dst
	nparams := int(callee.nparams)
	calleeName := callee.name
	prologue := callee.prologue
	instrumented := rec.upd.Instrumented
	mul3 := rec.upd.Mul3
	konst := rec.upd.Const
	encCyc := c.encCycles
	arityBad := len(argRefs) != nparams

	argN := len(argRefs)

	// Both variants inline the full call sequence — argument staging,
	// arity/depth checks, V update, cycle charges, frame push, callee
	// dispatch, V restore, return delivery — so a compiled call costs
	// one closure invocation plus the callee itself. Argument fetch
	// errors sort before the arity error, which sorts before the depth
	// error (the tree-walker's order).
	if argN <= 4 {
		return func(m *Machine, f *frameV) int32 {
			if tick && !m.mtick() {
				return stepFault
			}
			// Stage each argument unboxed when possible; a nil vbuf entry
			// means ubuf holds the scalar.
			var ubuf [4]uint64
			var vbuf [4]*Value
			for i := range argRefs {
				o := &argRefs[i]
				if o.k != nil {
					ubuf[i] = o.ku
					continue
				}
				r := &f.regs[o.idx]
				if r.uok && r.def {
					ubuf[i] = r.u
					continue
				}
				u, s := m.fetchScalarSlow(r, o)
				if s == scalarOK {
					ubuf[i] = u
					continue
				}
				if s == scalarFault {
					return stepFault
				}
				v := m.fetch(f, o)
				if v == nil {
					return stepFault
				}
				vbuf[i] = v
			}
			vm := &m.vm
			if arityBad {
				m.trap = fmt.Errorf("prog %s: call to %s with %d args, want %d",
					vm.c.p.Name, calleeName, argN, nparams)
				return stepFault
			}
			if vm.nframes > vm.maxDepth {
				m.trap = fmt.Errorf("prog %s: call depth limit %d exceeded", vm.c.p.Name, vm.maxDepth)
				return stepFault
			}
			if instrumented {
				if mul3 {
					vm.v = 3*f.t + konst
				} else {
					vm.v = f.t + konst
				}
				vm.encUpdates++
				vm.cycles += encCyc
			}
			vm.cycles += CycCall
			nf := vm.pushFrame(fnIdx, 0, 0)
			for i := 0; i < argN; i++ {
				if vbuf[i] == nil {
					nf.regs[i].setU(ubuf[i])
				} else {
					nf.regs[i].set(vbuf[i])
				}
			}
			if prologue {
				vm.cycles += CycEncPrologue
			}
			rv, err := m.invoke(fnIdx, nf)
			if err != nil {
				m.trap = err
				return stepFault
			}
			vm.nframes--
			// Restore discipline: V returns to the caller's context.
			vm.v = f.t
			if dst != opndNone {
				if m.retScalar {
					m.retScalar = false
					f.regs[dst].setU(m.retU)
				} else {
					if rv == nil {
						rv = &zeroValue
					}
					f.regs[dst].set(rv)
				}
			} else {
				m.retScalar = false
			}
			return next
		}
	}
	return func(m *Machine, f *frameV) int32 {
		if tick && !m.mtick() {
			return stepFault
		}
		vm := &m.vm
		if cap(vm.args) < argN {
			vm.args = make([]*Value, argN)
		}
		args := vm.args[:argN]
		for i := range argRefs {
			v := m.fetch(f, &argRefs[i])
			if v == nil {
				return stepFault
			}
			args[i] = v
		}
		if arityBad {
			m.trap = fmt.Errorf("prog %s: call to %s with %d args, want %d",
				vm.c.p.Name, calleeName, argN, nparams)
			return stepFault
		}
		if vm.nframes > vm.maxDepth {
			m.trap = fmt.Errorf("prog %s: call depth limit %d exceeded", vm.c.p.Name, vm.maxDepth)
			return stepFault
		}
		if instrumented {
			if mul3 {
				vm.v = 3*f.t + konst
			} else {
				vm.v = f.t + konst
			}
			vm.encUpdates++
			vm.cycles += encCyc
		}
		vm.cycles += CycCall
		nf := vm.pushFrame(fnIdx, 0, 0)
		for i := 0; i < argN; i++ {
			nf.regs[i].set(args[i])
		}
		if prologue {
			vm.cycles += CycEncPrologue
		}
		rv, err := m.invoke(fnIdx, nf)
		if err != nil {
			m.trap = err
			return stepFault
		}
		vm.nframes--
		// Restore discipline: V returns to the caller's context.
		vm.v = f.t
		if dst != opndNone {
			if m.retScalar {
				m.retScalar = false
				f.regs[dst].setU(m.retU)
			} else {
				if rv == nil {
					rv = &zeroValue
				}
				f.regs[dst].set(rv)
			}
		} else {
			m.retScalar = false
		}
		return next
	}
}

// buildAlloc bakes one allocation/realloc site: the SiteUpdate (or
// explicit-CCID path) as integer arithmetic and the patch-verdict
// probe per backend shape. The verdict inline cache (noteAlloc) is
// shared with the cold tier.
func (fc *fnCompiler) buildAlloc(ins *instr, tick bool, next int32) closStep {
	c := fc.c
	rec := &c.allocs[ins.aux]
	realloc := ins.op == opRealloc
	ptrRef := opref{idx: -1, k: &zeroValue}
	if realloc {
		ptrRef = fc.ref(rec.ptr)
	}
	sizeRef := fc.ref(rec.size)
	nRef := fc.ref(rec.n)
	alignRef := fc.ref(rec.align)
	hasCCID := rec.ccid != opndNone
	var ccidRef opref
	if hasCCID {
		ccidRef = fc.ref(rec.ccid)
	}
	instrumented := rec.upd.Instrumented
	mul3 := rec.upd.Mul3
	konst := rec.upd.Const
	encCyc := c.encCycles
	allocFn := rec.fn
	byFn := rec.byFn
	dst, icIdx := rec.dst, rec.ic
	probe := fc.shape.prober

	return func(m *Machine, f *frameV) int32 {
		if tick && !m.mtick() {
			return stepFault
		}
		vm := &m.vm
		// Every operand here is consumed as an integer (the allocator
		// interface takes uint64s), so the unboxed path applies even
		// under CheckUse shapes: the VM performs no use-point check on
		// allocation operands either.
		var ptrU uint64
		if realloc {
			u, ok := m.fetchUint(f, &ptrRef)
			if !ok {
				return stepFault
			}
			ptrU = u
		}
		sizeU, ok := m.fetchUint(f, &sizeRef)
		if !ok {
			return stepFault
		}
		nU, ok := m.fetchUint(f, &nRef)
		if !ok {
			return stepFault
		}
		alignU, ok := m.fetchUint(f, &alignRef)
		if !ok {
			return stepFault
		}
		ccid := vm.v
		if hasCCID {
			cv, ok := m.fetchUint(f, &ccidRef)
			if !ok {
				return stepFault
			}
			ccid = cv
			vm.encUpdates++
			vm.cycles += CycEncUpdatePCC
		} else if instrumented {
			if mul3 {
				ccid = 3*f.t + konst
			} else {
				ccid = f.t + konst
			}
			vm.encUpdates++
			vm.cycles += encCyc
		}
		vm.allocs++
		vm.allocsByFn[byFn]++
		var ptr uint64
		var aerr error
		if realloc {
			ptr, aerr = vm.backend.Realloc(ccid, ptrU, sizeU)
		} else {
			ptr, aerr = vm.backend.Alloc(allocFn, ccid, nU, sizeU, alignU)
		}
		if aerr != nil {
			m.trap = vm.crash(aerr)
			return stepFault
		}
		f.regs[dst].setU(ptr)
		vm.ics[icIdx].allocs++
		if probe {
			vm.noteAlloc(rec, ccid)
		}
		return next
	}
}

// buildBinBr fuses a binary op into the conditional branch consuming
// its result — the loop-head superinstruction (e.g. `i < n` feeding
// the while branch): one dispatch instead of two per iteration.
func (fc *fnCompiler) buildBinBr(bin, br *instr, next int32) closStep {
	dst, bop := bin.dst, bin.bop
	a, b := fc.ref(bin.a), fc.ref(bin.b)
	tick1, tick2 := bin.tick, br.tick
	elseIdx := fc.stepAt(br.aux)
	cu := fc.shape.checkUse
	aConst, aku, aIdx := a.k != nil, a.ku, a.idx
	bConst, bku, bIdx := b.k != nil, b.ku, b.idx

	// gen is the materialized path: boxed or undefined operands,
	// shadow-plane propagation through setBin.
	gen := func(m *Machine, f *frameV) int32 {
		av := m.fetch(f, &a)
		if av == nil {
			return stepFault
		}
		bv := m.fetch(f, &b)
		if bv == nil {
			return stepFault
		}
		r, err := binScalar(bop, av.Uint(), bv.Uint())
		if err != nil {
			m.trap = err
			return stepFault
		}
		dreg := &f.regs[dst]
		dreg.setBin(r, av, bv)
		if tick2 && !m.mtick() {
			return stepFault
		}
		if cu {
			m.vm.backend.CheckUse(dreg.val, UseControlFlow, m.vm.v)
		}
		// setBin stored r as the scalar result, so branch on it directly.
		if dreg.val.Uint() == 0 {
			return elseIdx
		}
		return next
	}

	return func(m *Machine, f *frameV) int32 {
		if tick1 && !m.mtick() {
			return stepFault
		}
		var au, bu uint64
		if aConst {
			au = aku
		} else if ra := &f.regs[aIdx]; ra.uok && ra.def {
			au = ra.u
		} else {
			return gen(m, f)
		}
		if bConst {
			bu = bku
		} else if rb := &f.regs[bIdx]; rb.uok && rb.def {
			bu = rb.u
		} else {
			return gen(m, f)
		}
		r, err := binScalar(bop, au, bu)
		if err != nil {
			m.trap = err
			return stepFault
		}
		dreg := &f.regs[dst]
		dreg.setU(r)
		if tick2 && !m.mtick() {
			return stepFault
		}
		if cu {
			dreg.materialize()
			m.vm.backend.CheckUse(dreg.val, UseControlFlow, m.vm.v)
		}
		if r == 0 {
			return elseIdx
		}
		return next
	}
}

// buildBinJmp fuses a binary op into the unconditional jump following
// it — the loop-latch superinstruction (`i = i + 1` feeding the
// back-edge): one dispatch per iteration instead of two.
func (fc *fnCompiler) buildBinJmp(bin, jmp *instr) closStep {
	dst, bop := bin.dst, bin.bop
	a, b := fc.ref(bin.a), fc.ref(bin.b)
	tick1, tick2 := bin.tick, jmp.tick
	tgt := fc.stepAt(jmp.aux)
	aConst, aku, aIdx := a.k != nil, a.ku, a.idx
	bConst, bku, bIdx := b.k != nil, b.ku, b.idx

	gen := func(m *Machine, f *frameV) int32 {
		av := m.fetch(f, &a)
		if av == nil {
			return stepFault
		}
		bv := m.fetch(f, &b)
		if bv == nil {
			return stepFault
		}
		r, err := binScalar(bop, av.Uint(), bv.Uint())
		if err != nil {
			m.trap = err
			return stepFault
		}
		f.regs[dst].setBin(r, av, bv)
		if tick2 && !m.mtick() {
			return stepFault
		}
		return tgt
	}

	return func(m *Machine, f *frameV) int32 {
		if tick1 && !m.mtick() {
			return stepFault
		}
		var au, bu uint64
		if aConst {
			au = aku
		} else if ra := &f.regs[aIdx]; ra.uok && ra.def {
			au = ra.u
		} else {
			return gen(m, f)
		}
		if bConst {
			bu = bku
		} else if rb := &f.regs[bIdx]; rb.uok && rb.def {
			bu = rb.u
		} else {
			return gen(m, f)
		}
		r, err := binScalar(bop, au, bu)
		if err != nil {
			m.trap = err
			return stepFault
		}
		f.regs[dst].setU(r)
		if tick2 && !m.mtick() {
			return stepFault
		}
		return tgt
	}
}

// buildBinBin fuses two consecutive binary ops (chained arithmetic:
// the second may consume the first's destination) into one dispatch.
func (fc *fnCompiler) buildBinBin(b1, b2 *instr, next int32) closStep {
	dst1, bop1 := b1.dst, b1.bop
	a1, c1 := fc.ref(b1.a), fc.ref(b1.b)
	dst2, bop2 := b2.dst, b2.bop
	a2, c2 := fc.ref(b2.a), fc.ref(b2.b)
	tick1, tick2 := b1.tick, b2.tick
	a1Const, a1ku, a1Idx := a1.k != nil, a1.ku, a1.idx
	c1Const, c1ku, c1Idx := c1.k != nil, c1.ku, c1.idx
	a2Const, a2ku, a2Idx := a2.k != nil, a2.ku, a2.idx
	c2Const, c2ku, c2Idx := c2.k != nil, c2.ku, c2.idx

	return func(m *Machine, f *frameV) int32 {
		if tick1 && !m.mtick() {
			return stepFault
		}
		// First op: inline unboxed path, binInto for everything else.
		var au, bu uint64
		fast := true
		if a1Const {
			au = a1ku
		} else if ra := &f.regs[a1Idx]; ra.uok && ra.def {
			au = ra.u
		} else {
			fast = false
		}
		if fast {
			if c1Const {
				bu = c1ku
			} else if rb := &f.regs[c1Idx]; rb.uok && rb.def {
				bu = rb.u
			} else {
				fast = false
			}
		}
		if fast {
			r, err := binScalar(bop1, au, bu)
			if err != nil {
				m.trap = err
				return stepFault
			}
			f.regs[dst1].setU(r)
		} else if !binInto(m, f, bop1, &a1, &c1, dst1) {
			return stepFault
		}
		if tick2 && !m.mtick() {
			return stepFault
		}
		// Second op (may consume dst1, which the fast path left unboxed).
		fast = true
		if a2Const {
			au = a2ku
		} else if ra := &f.regs[a2Idx]; ra.uok && ra.def {
			au = ra.u
		} else {
			fast = false
		}
		if fast {
			if c2Const {
				bu = c2ku
			} else if rb := &f.regs[c2Idx]; rb.uok && rb.def {
				bu = rb.u
			} else {
				fast = false
			}
		}
		if fast {
			r, err := binScalar(bop2, au, bu)
			if err != nil {
				m.trap = err
				return stepFault
			}
			f.regs[dst2].setU(r)
			return next
		}
		if !binInto(m, f, bop2, &a2, &c2, dst2) {
			return stepFault
		}
		return next
	}
}

// binInto executes one binary op into dst, preferring the unboxed
// path and falling back to the materialized setBin path when an
// operand carries shadow planes or an odd width. false means a fault
// (undefined variable or arithmetic error) is staged in trap.
func binInto(m *Machine, f *frameV, bop BinOp, a, b *opref, dst int32) bool {
	if au, s := m.fetchScalar(f, a); s == scalarOK {
		bu, s2 := m.fetchScalar(f, b)
		if s2 == scalarOK {
			r, err := binScalar(bop, au, bu)
			if err != nil {
				m.trap = err
				return false
			}
			f.regs[dst].setU(r)
			return true
		}
		if s2 == scalarFault {
			return false
		}
	} else if s == scalarFault {
		return false
	}
	av := m.fetch(f, a)
	if av == nil {
		return false
	}
	bv := m.fetch(f, b)
	if bv == nil {
		return false
	}
	r, err := binScalar(bop, av.Uint(), bv.Uint())
	if err != nil {
		m.trap = err
		return false
	}
	f.regs[dst].setBin(r, av, bv)
	return true
}
