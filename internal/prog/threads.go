package prog

import (
	"fmt"
)

// Threading. The paper stores the current CCID in a thread-local
// variable V, and its service evaluation (Nginx, MySQL) runs
// multithreaded servers over one shared heap. This file adds
// deterministic multi-threaded execution: N interpreter instances —
// each with its OWN V (thread locality) — share ONE heap backend, and
// a cooperative scheduler interleaves them round-robin with a fixed
// statement quantum. Determinism keeps CCIDs and test outcomes
// reproducible while still exercising cross-thread heap interleaving
// (allocations from different threads interleave in the shared arena,
// so adjacency and reuse cross thread boundaries exactly as they do
// under a real multithreaded allocator).

// DefaultQuantum is the default scheduling quantum in statements.
const DefaultQuantum = 64

// RunThreads executes one instance of p per input, all sharing
// cfg.Backend, interleaved deterministically. The i-th result
// corresponds to the i-th input. An execution error in any thread
// aborts the run.
func RunThreads(p *Program, cfg Config, inputs [][]byte, quantum uint64) ([]*Result, error) {
	n := len(inputs)
	if n == 0 {
		return nil, fmt.Errorf("prog: RunThreads with no inputs")
	}
	if quantum == 0 {
		quantum = DefaultQuantum
	}

	type outcome struct {
		res *Result
		err error
	}
	grants := make([]chan struct{}, n)
	events := make(chan int) // thread i yielded
	finals := make([]outcome, n)
	finished := make(chan int)

	// Construct every executor before spawning any goroutine: if a
	// construction fails mid-loop, no thread goroutine exists yet to be
	// left blocked on a grant that will never come. Under EngineVM and
	// EngineCompiled the program is compiled once and the immutable
	// Compiled is shared by all threads (each VM/Machine holds only its
	// own mutable state); compiled-engine threads additionally share
	// one ClosureCache, so a function promoted by one thread is
	// already compiled for the others.
	var compiled *Compiled
	newRunner := func() (runner, error) {
		switch cfg.Engine {
		case EngineTree:
			return New(p, cfg)
		case EngineVM:
			if compiled == nil {
				var err error
				if compiled, err = Compile(p, cfg.Coder); err != nil {
					return nil, err
				}
			}
			return NewVM(compiled, cfg)
		case EngineCompiled:
			if compiled == nil {
				var err error
				if compiled, err = Compile(p, cfg.Coder); err != nil {
					return nil, err
				}
				cfg.Closures = NewClosureCache(compiled)
			}
			return NewMachine(compiled, cfg)
		default:
			return nil, fmt.Errorf("prog: unknown engine %v", cfg.Engine)
		}
	}
	interps := make([]runner, n)
	for i := 0; i < n; i++ {
		it, err := newRunner()
		if err != nil {
			return nil, err
		}
		grants[i] = make(chan struct{})
		i := i
		it.setSchedHook(quantum, func() {
			events <- i
			<-grants[i]
		})
		interps[i] = it
	}
	for i := 0; i < n; i++ {
		i := i
		go func() {
			<-grants[i] // wait for the first grant
			res, err := interps[i].Run(inputs[i])
			finals[i] = outcome{res: res, err: err}
			finished <- i
		}()
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	remaining := n
	for remaining > 0 {
		for i := 0; i < n; i++ {
			if !alive[i] {
				continue
			}
			grants[i] <- struct{}{}
			select {
			case <-events: // thread i yielded; next thread's turn
			case j := <-finished:
				alive[j] = false
				remaining--
			}
		}
	}

	results := make([]*Result, n)
	for i, o := range finals {
		if o.err != nil {
			return nil, fmt.Errorf("prog: thread %d: %w", i, o.err)
		}
		results[i] = o.res
	}
	return results, nil
}
