package mem

import (
	"encoding/binary"
	"fmt"
)

// Audit cross-checks the space's page-state bookkeeping. The dirty
// bitmap is the load-bearing optimization behind cheap Reset — a bit is
// set on every store and every protection change — so its defining
// invariant is checkable from the outside: a page whose bit is clear
// must still be in its freshly-mapped state, ProtRW and all zero. Audit
// verifies that, plus the structural consistency of the prot and dirty
// tables against the mapped length. The campaign harness calls it
// between interpreter quanta; it never mutates the space.
func (s *Space) Audit() error {
	if uint64(len(s.data))%PageSize != 0 {
		return fmt.Errorf("mem: audit: mapped length %d is not page aligned", len(s.data))
	}
	npages := uint64(len(s.data)) / PageSize
	if uint64(len(s.prot)) != npages {
		return fmt.Errorf("mem: audit: %d prot entries for %d mapped pages", len(s.prot), npages)
	}
	if want := (npages + 63) / 64; uint64(len(s.dirty)) < want {
		return fmt.Errorf("mem: audit: dirty bitmap holds %d words, need %d", len(s.dirty), want)
	}
	for p := uint64(0); p < npages; p++ {
		if s.dirty[p>>6]&(1<<(p&63)) != 0 {
			continue // dirty pages may hold anything under any prot
		}
		if s.prot[p] != ProtRW {
			return fmt.Errorf("mem: audit: clean page %d has prot %v (protection changes must mark dirty)", p, s.prot[p])
		}
		if off, ok := firstNonZero(s.data[p*PageSize : (p+1)*PageSize]); ok {
			return fmt.Errorf("mem: audit: clean page %d has nonzero byte at offset %d (stores must mark dirty)", p, off)
		}
	}
	return nil
}

// firstNonZero scans b (a page) word-at-a-time and reports the offset
// of the first nonzero byte.
func firstNonZero(b []byte) (int, bool) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if binary.LittleEndian.Uint64(b[i:]) != 0 {
			break
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return i, true
		}
	}
	return 0, false
}
