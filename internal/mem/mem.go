// Package mem implements a simulated byte-addressable address space with
// page-granularity protection, modeled after the portion of POSIX virtual
// memory semantics that HeapTherapy+ depends on: mprotect-style page
// protection and fault-on-access for inaccessible pages.
//
// The online defense generator in the paper places guard pages after
// vulnerable buffers and marks them PROT_NONE with mprotect(2); any
// overflowing access then faults. This package reproduces exactly those
// semantics over an in-process byte array: every load, store, and copy is
// checked against per-page protection bits, and violations surface as
// *FaultError values (the simulation's SIGSEGV).
package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"heaptherapy/internal/telemetry"
)

// PageSize is the size of a virtual page in bytes. It matches the 4 KiB
// page size assumed by the paper's guard-page placement (Section VI) and
// its 36-bit page-frame encoding in the metadata word.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Prot is a page-protection bitmask, mirroring PROT_READ/PROT_WRITE.
type Prot uint8

// Protection bits. ProtNone (no bits set) makes a page inaccessible.
const (
	// ProtRead permits loads from the page.
	ProtRead Prot = 1 << iota
	// ProtWrite permits stores to the page.
	ProtWrite
)

// ProtNone marks a page wholly inaccessible, as used for guard pages.
const ProtNone Prot = 0

// ProtRW permits both loads and stores; the default for mapped memory.
const ProtRW = ProtRead | ProtWrite

func (p Prot) String() string {
	switch p {
	case ProtNone:
		return "---"
	case ProtRead:
		return "r--"
	case ProtWrite:
		return "-w-"
	case ProtRW:
		return "rw-"
	default:
		return fmt.Sprintf("Prot(%#x)", uint8(p))
	}
}

// AccessKind distinguishes the operation that caused a fault.
type AccessKind uint8

// Kinds of memory access.
const (
	// AccessRead is a load.
	AccessRead AccessKind = iota + 1
	// AccessWrite is a store.
	AccessWrite
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// FaultError reports an access violation: the simulation's equivalent of
// SIGSEGV. The online defense relies on these faults to stop overflow
// attacks at the guard page.
type FaultError struct {
	// Addr is the first faulting address.
	Addr uint64
	// Kind is the access type that faulted.
	Kind AccessKind
	// Len is the length of the attempted access.
	Len uint64
	// Reason describes why the access faulted.
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("memory fault: %s of %d byte(s) at %#x: %s", e.Kind, e.Len, e.Addr, e.Reason)
}

// Space is a simulated address space. The space covers addresses
// [Base, Base+Size). Addresses below Base are never mapped, so address 0
// is always invalid (a nil pointer faults, as on a real machine).
//
// A Space grows upward via Sbrk, mimicking the classic Unix program
// break; the heap allocator in package heapsim builds its arena on top.
//
// Space is not safe for concurrent use; the interpreter in package prog
// is single-threaded per space, matching the paper's per-process view.
type Space struct {
	base    uint64
	data    []byte
	prot    []Prot // one entry per page, indexed from base
	limit   uint64 // maximum mapped size in bytes
	reserve uint64 // initial mapped size; Reset returns the break here

	// dirty has one bit per mapped page, set on every store and
	// protection change. Reset zeroes exactly the dirty pages, so the
	// cost of recycling a space is proportional to what an execution
	// actually touched, not to the address-space size. Loads never
	// dirty a page.
	dirty []uint64

	faults uint64 // count of faults reported, for diagnostics

	// tel, when non-nil, receives a counter increment and a trace event
	// per fault. It is consulted only on the refCheck slow path, so the
	// two-comparison fast path in check is unaffected.
	tel *telemetry.Scope
}

// Config controls Space construction.
type Config struct {
	// Base is the lowest mapped address. It must be page aligned and
	// nonzero. Defaults to DefaultBase.
	Base uint64
	// Reserve is the initial mapped size in bytes, rounded up to a page
	// boundary. Defaults to DefaultReserve.
	Reserve uint64
	// Limit caps the total mapped size in bytes (0 means DefaultLimit).
	Limit uint64
}

// Defaults for Config.
const (
	// DefaultBase places the heap segment at 1 MiB, so small addresses
	// (including nil) always fault.
	DefaultBase = 1 << 20
	// DefaultReserve is the initial mapping: 1 MiB.
	DefaultReserve = 1 << 20
	// DefaultLimit caps the simulated segment at 1 GiB.
	DefaultLimit = 1 << 30
)

// limit is the effective cap for this space.
func (c Config) limit() uint64 {
	if c.Limit == 0 {
		return DefaultLimit
	}
	return c.Limit
}

// NewSpace creates a simulated address space.
func NewSpace(cfg Config) (*Space, error) {
	if cfg.Base == 0 {
		cfg.Base = DefaultBase
	}
	if cfg.Reserve == 0 {
		cfg.Reserve = DefaultReserve
	}
	if cfg.Base%PageSize != 0 {
		return nil, fmt.Errorf("mem: base %#x is not page aligned", cfg.Base)
	}
	reserve := roundUpPage(cfg.Reserve)
	if reserve > cfg.limit() {
		return nil, fmt.Errorf("mem: reserve %d exceeds limit %d", reserve, cfg.limit())
	}
	s := &Space{
		base:    cfg.Base,
		data:    make([]byte, reserve),
		prot:    make([]Prot, reserve/PageSize),
		limit:   cfg.limit(),
		reserve: reserve,
		dirty:   make([]uint64, (reserve/PageSize+63)/64),
	}
	for i := range s.prot {
		s.prot[i] = ProtRW
	}
	return s, nil
}

// Base returns the lowest mapped address.
func (s *Space) Base() uint64 { return s.base }

// End returns one past the highest mapped address (the current break).
func (s *Space) End() uint64 { return s.base + uint64(len(s.data)) }

// Size returns the mapped size in bytes.
func (s *Space) Size() uint64 { return uint64(len(s.data)) }

// Faults returns the number of faults this space has reported.
func (s *Space) Faults() uint64 { return s.faults }

// SetTelemetry attaches a telemetry scope; every fault the space
// reports is then counted and traced. A nil scope detaches.
func (s *Space) SetTelemetry(tel *telemetry.Scope) { s.tel = tel }

// fault records one fault in the space's own counter and, when a
// telemetry scope is attached, as a CtrFaults increment plus an EvFault
// trace event. The space has no calling-context knowledge, so the event
// carries the access kind in the CCID field, the faulting address as
// the site, and the access length as the argument; layers above (the
// defense backend) attribute faults to contexts.
func (s *Space) fault(addr, n uint64, kind AccessKind) {
	s.faults++
	if s.tel != nil {
		s.tel.Inc(telemetry.CtrFaults)
		s.tel.Event(telemetry.EvFault, uint64(kind), addr, n)
	}
}

// Sbrk grows the mapped region by n bytes (rounded up to a page) and
// returns the previous break address, which is the start of the newly
// mapped region. New pages are ProtRW and zero filled. After a Reset,
// regrowth reuses the retained backing capacity (re-zeroing it in
// place) so the steady-state recycle path allocates nothing.
func (s *Space) Sbrk(n uint64) (uint64, error) {
	grow := roundUpPage(n)
	old := s.End()
	newLen := uint64(len(s.data)) + grow
	if newLen > s.limitBytes() {
		return 0, fmt.Errorf("mem: sbrk(%d) exceeds segment limit %d", n, s.limitBytes())
	}
	if uint64(cap(s.data)) >= newLen {
		prev := len(s.data)
		s.data = s.data[:newLen]
		clear(s.data[prev:]) // stale bytes from before a Reset
	} else {
		s.data = append(s.data, make([]byte, grow)...)
	}
	for i := uint64(0); i < grow/PageSize; i++ {
		s.prot = append(s.prot, ProtRW)
	}
	for uint64(len(s.dirty))*64 < uint64(len(s.prot)) {
		s.dirty = append(s.dirty, 0)
	}
	return old, nil
}

// limitBytes returns the maximum mapped size, from Config.Limit.
func (s *Space) limitBytes() uint64 { return s.limit }

// markDirty records that the pages overlapping [addr, addr+n) were
// mutated. Callers must have validated the range (it is invoked only
// after a successful check or Contains). The common small store dirties
// one page with a single OR, so the hot store path pays almost nothing
// for resettability.
func (s *Space) markDirty(addr, n uint64) {
	if n == 0 {
		return
	}
	first := (addr - s.base) >> PageShift
	last := (addr + n - 1 - s.base) >> PageShift
	for p := first; p <= last; p++ {
		s.dirty[p>>6] |= 1 << (p & 63)
	}
}

// DirtyPages counts pages currently marked dirty (mutated since
// construction or the last Reset). Exposed for tests and for the fleet
// runtime's recycling diagnostics.
func (s *Space) DirtyPages() int {
	n := 0
	for _, w := range s.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset returns the space to its post-construction state: the break
// back at the initial reserve, every retained page zero filled and
// ProtRW, and the fault count cleared. Only pages marked dirty are
// touched, so the cost is proportional to what the previous execution
// mutated — a worker context serving small requests recycles in
// microseconds regardless of the space's configured size. Memory
// mapped beyond the initial reserve is logically unmapped; its backing
// capacity is retained and re-zeroed in place by the next Sbrk, which
// keeps the recycle-then-regrow path allocation-free. Borrowed views
// (View/WritableView/RawView) taken before a Reset must not be used
// afterwards.
func (s *Space) Reset() {
	resPages := s.reserve / PageSize
	for w, word := range s.dirty {
		if word == 0 {
			continue
		}
		s.dirty[w] = 0
		pageBase := uint64(w) * 64
		for word != 0 {
			p := pageBase + uint64(bits.TrailingZeros64(word))
			word &= word - 1
			if p < resPages {
				off := p * PageSize
				clear(s.data[off : off+PageSize])
				s.prot[p] = ProtRW
			}
			// Pages beyond the reserve are dropped below; Sbrk re-zeroes
			// their capacity if the region is ever remapped.
		}
	}
	s.data = s.data[:s.reserve]
	s.prot = s.prot[:resPages]
	if words := int((resPages + 63) / 64); len(s.dirty) > words {
		s.dirty = s.dirty[:words]
	}
	s.faults = 0
}

// Contains reports whether the address range [addr, addr+n) is mapped.
func (s *Space) Contains(addr, n uint64) bool {
	if addr < s.base {
		return false
	}
	end := addr + n
	return end >= addr && end <= s.End()
}

// Mprotect sets the protection of every page overlapping
// [addr, addr+n). Both addr and n must be page aligned, matching
// mprotect(2) semantics.
func (s *Space) Mprotect(addr, n uint64, p Prot) error {
	if addr%PageSize != 0 {
		return fmt.Errorf("mem: mprotect address %#x is not page aligned", addr)
	}
	if n%PageSize != 0 {
		return fmt.Errorf("mem: mprotect length %d is not page aligned", n)
	}
	if !s.Contains(addr, n) {
		return fmt.Errorf("mem: mprotect range [%#x,%#x) is not mapped", addr, addr+n)
	}
	first := (addr - s.base) / PageSize
	for i := uint64(0); i < n/PageSize; i++ {
		s.prot[first+i] = p
	}
	// Protection is part of resettable state: a page whose protection
	// changed must be restored to ProtRW on Reset.
	s.markDirty(addr, n)
	return nil
}

// ProtAt returns the protection of the page containing addr.
func (s *Space) ProtAt(addr uint64) (Prot, error) {
	if !s.Contains(addr, 1) {
		return 0, fmt.Errorf("mem: address %#x is not mapped", addr)
	}
	return s.prot[(addr-s.base)/PageSize], nil
}

// check validates an access of n bytes at addr for the given kind and
// returns a *FaultError pinpointing the first offending address. The
// common case — an in-bounds access confined to one permitted page —
// is decided with two comparisons; everything else falls through to
// refCheck, whose per-page walk is also the reference implementation
// the differential tests compare against.
func (s *Space) check(addr, n uint64, kind AccessKind) error {
	if n == 0 {
		return nil
	}
	if addr >= s.base {
		end := addr + n
		if end > addr && end <= s.End() {
			page := (addr - s.base) >> PageShift
			if (end-1-s.base)>>PageShift == page {
				need := ProtRead
				if kind == AccessWrite {
					need = ProtWrite
				}
				if s.prot[page]&need != 0 {
					return nil
				}
			}
		}
	}
	return s.refCheck(addr, n, kind)
}

// refCheck is the naive predecessor of check: the full multi-page
// validation walk. It is the only place faults are counted, so the
// fast path above cannot perturb fault accounting.
func (s *Space) refCheck(addr, n uint64, kind AccessKind) error {
	if n == 0 {
		return nil
	}
	if addr+n < addr { // overflow
		s.fault(addr, n, kind)
		return &FaultError{Addr: addr, Kind: kind, Len: n, Reason: "address range wraps"}
	}
	if addr < s.base || addr >= s.End() {
		s.fault(addr, n, kind)
		return &FaultError{Addr: addr, Kind: kind, Len: n, Reason: "unmapped address"}
	}
	need := ProtRead
	if kind == AccessWrite {
		need = ProtWrite
	}
	// Walk pages in address order so the FIRST offending page decides
	// the fault, the way an MMU would: an access that crosses a
	// guard page on its way off the mapping faults on the guard page,
	// not at the break — which is what lets the defense layer classify
	// a huge patched overread as contained rather than wild.
	firstPage := (addr - s.base) / PageSize
	lastPage := (addr + n - 1 - s.base) / PageSize
	for p := firstPage; p <= lastPage; p++ {
		if p >= uint64(len(s.prot)) {
			faultAddr := s.base + p*PageSize
			s.fault(faultAddr, n, kind)
			return &FaultError{Addr: faultAddr, Kind: kind, Len: n, Reason: "unmapped address"}
		}
		if s.prot[p]&need == 0 {
			faultAddr := s.base + p*PageSize
			if faultAddr < addr {
				faultAddr = addr
			}
			s.fault(faultAddr, n, kind)
			return &FaultError{
				Addr: faultAddr, Kind: kind, Len: n,
				Reason: fmt.Sprintf("page protection %s forbids %s", s.prot[p], kind),
			}
		}
	}
	return nil
}

// CheckRead validates that [addr, addr+n) is readable.
func (s *Space) CheckRead(addr, n uint64) error { return s.check(addr, n, AccessRead) }

// CheckWrite validates that [addr, addr+n) is writable.
func (s *Space) CheckWrite(addr, n uint64) error { return s.check(addr, n, AccessWrite) }

// Read copies n bytes starting at addr into a fresh slice.
func (s *Space) Read(addr, n uint64) ([]byte, error) {
	if err := s.check(addr, n, AccessRead); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, s.data[addr-s.base:])
	return out, nil
}

// ReadInto copies len(dst) bytes starting at addr into dst.
func (s *Space) ReadInto(addr uint64, dst []byte) error {
	n := uint64(len(dst))
	if err := s.check(addr, n, AccessRead); err != nil {
		return err
	}
	copy(dst, s.data[addr-s.base:])
	return nil
}

// Write copies src into memory starting at addr.
func (s *Space) Write(addr uint64, src []byte) error {
	n := uint64(len(src))
	if err := s.check(addr, n, AccessWrite); err != nil {
		return err
	}
	s.markDirty(addr, n)
	copy(s.data[addr-s.base:], src)
	return nil
}

// Memset fills [addr, addr+n) with b.
func (s *Space) Memset(addr uint64, b byte, n uint64) error {
	if err := s.check(addr, n, AccessWrite); err != nil {
		return err
	}
	s.markDirty(addr, n)
	fillBytes(s.data[addr-s.base:addr-s.base+n], b)
	return nil
}

// fillBytes fills dst with b. Zero fills compile to a memclr; nonzero
// fills seed one byte and double it with copy, which runs at memmove
// bandwidth instead of a byte loop.
func fillBytes(dst []byte, b byte) {
	if b == 0 {
		clear(dst)
		return
	}
	if len(dst) == 0 {
		return
	}
	dst[0] = b
	for filled := 1; filled < len(dst); filled *= 2 {
		copy(dst[filled:], dst[:filled])
	}
}

// refFill is the naive predecessor of fillBytes (differential tests).
func refFill(dst []byte, b byte) {
	for i := range dst {
		dst[i] = b
	}
}

// Memmove copies n bytes from src to dst with memmove overlap semantics.
func (s *Space) Memmove(dst, src, n uint64) error {
	if err := s.check(src, n, AccessRead); err != nil {
		return err
	}
	if err := s.check(dst, n, AccessWrite); err != nil {
		return err
	}
	s.markDirty(dst, n)
	copy(s.data[dst-s.base:dst-s.base+n], s.data[src-s.base:src-s.base+n])
	return nil
}

// Load64 reads a little-endian 64-bit word at addr.
func (s *Space) Load64(addr uint64) (uint64, error) {
	if err := s.check(addr, 8, AccessRead); err != nil {
		return 0, err
	}
	return s.load64(addr), nil
}

// load64 reads a word without checking protection; callers must have
// validated the access.
func (s *Space) load64(addr uint64) uint64 {
	off := addr - s.base
	return binary.LittleEndian.Uint64(s.data[off : off+8])
}

// refLoad64 is the naive predecessor of load64 (differential tests).
func (s *Space) refLoad64(addr uint64) uint64 {
	off := addr - s.base
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(s.data[off+i]) << (8 * i)
	}
	return v
}

// Store64 writes a little-endian 64-bit word at addr.
func (s *Space) Store64(addr, v uint64) error {
	if err := s.check(addr, 8, AccessWrite); err != nil {
		return err
	}
	s.store64(addr, v)
	return nil
}

func (s *Space) store64(addr, v uint64) {
	s.markDirty(addr, 8)
	off := addr - s.base
	binary.LittleEndian.PutUint64(s.data[off:off+8], v)
}

// refStore64 is the naive predecessor of store64 (differential tests).
func (s *Space) refStore64(addr, v uint64) {
	s.markDirty(addr, 8)
	off := addr - s.base
	for i := uint64(0); i < 8; i++ {
		s.data[off+i] = byte(v >> (8 * i))
	}
}

// RawLoad64 reads a 64-bit word ignoring page protection. It is used by
// the allocator and the defense library for their own metadata, which a
// real implementation would access through unprotected mappings.
func (s *Space) RawLoad64(addr uint64) (uint64, error) {
	if !s.Contains(addr, 8) {
		return 0, &FaultError{Addr: addr, Kind: AccessRead, Len: 8, Reason: "unmapped address"}
	}
	return s.load64(addr), nil
}

// RawStore64 writes a 64-bit word ignoring page protection.
func (s *Space) RawStore64(addr, v uint64) error {
	if !s.Contains(addr, 8) {
		return &FaultError{Addr: addr, Kind: AccessWrite, Len: 8, Reason: "unmapped address"}
	}
	s.store64(addr, v)
	return nil
}

// RawRead copies n bytes ignoring page protection.
func (s *Space) RawRead(addr, n uint64) ([]byte, error) {
	if !s.Contains(addr, n) {
		return nil, &FaultError{Addr: addr, Kind: AccessRead, Len: n, Reason: "unmapped address"}
	}
	out := make([]byte, n)
	copy(out, s.data[addr-s.base:])
	return out, nil
}

// RawWrite copies src ignoring page protection.
func (s *Space) RawWrite(addr uint64, src []byte) error {
	n := uint64(len(src))
	if !s.Contains(addr, n) {
		return &FaultError{Addr: addr, Kind: AccessWrite, Len: n, Reason: "unmapped address"}
	}
	s.markDirty(addr, n)
	copy(s.data[addr-s.base:], src)
	return nil
}

// RawMemset fills memory ignoring page protection.
func (s *Space) RawMemset(addr uint64, b byte, n uint64) error {
	if !s.Contains(addr, n) {
		return &FaultError{Addr: addr, Kind: AccessWrite, Len: n, Reason: "unmapped address"}
	}
	s.markDirty(addr, n)
	fillBytes(s.data[addr-s.base:addr-s.base+n], b)
	return nil
}

// RawWriteByte stores one byte ignoring page protection: the per-byte
// slow paths in package shadow land individual bytes in red zones and
// freed blocks, and must not pay a slice header per byte to do so.
func (s *Space) RawWriteByte(addr uint64, v byte) error {
	if !s.Contains(addr, 1) {
		return &FaultError{Addr: addr, Kind: AccessWrite, Len: 1, Reason: "unmapped address"}
	}
	s.dirty[(addr-s.base)>>(PageShift+6)] |= 1 << (((addr - s.base) >> PageShift) & 63)
	s.data[addr-s.base] = v
	return nil
}

// RawMemmove copies n bytes from src to dst with memmove overlap
// semantics, ignoring page protection.
func (s *Space) RawMemmove(dst, src, n uint64) error {
	if !s.Contains(src, n) {
		return &FaultError{Addr: src, Kind: AccessRead, Len: n, Reason: "unmapped address"}
	}
	if !s.Contains(dst, n) {
		return &FaultError{Addr: dst, Kind: AccessWrite, Len: n, Reason: "unmapped address"}
	}
	s.markDirty(dst, n)
	copy(s.data[dst-s.base:dst-s.base+n], s.data[src-s.base:src-s.base+n])
	return nil
}

// View returns a borrowed slice aliasing [addr, addr+n) after a read
// check. The slice shares the space's backing store: it lets callers
// consume memory without the per-call allocation Read pays, but it must
// not be written through, and it is invalidated by the next Sbrk (which
// may move the backing array).
func (s *Space) View(addr, n uint64) ([]byte, error) {
	if err := s.check(addr, n, AccessRead); err != nil {
		return nil, err
	}
	off := addr - s.base
	return s.data[off : off+n : off+n], nil
}

// WritableView is View with a write check; the caller may write
// through the returned slice. The same Sbrk invalidation applies.
func (s *Space) WritableView(addr, n uint64) ([]byte, error) {
	if err := s.check(addr, n, AccessWrite); err != nil {
		return nil, err
	}
	s.markDirty(addr, n) // the caller may write anywhere in the view
	off := addr - s.base
	return s.data[off : off+n : off+n], nil
}

// RawView returns a borrowed slice ignoring page protection, for
// subsystems (allocator metadata, shadow planes, the sealed patch
// table) that implement their own access control. The same Sbrk
// invalidation applies.
func (s *Space) RawView(addr, n uint64) ([]byte, error) {
	if !s.Contains(addr, n) {
		return nil, &FaultError{Addr: addr, Kind: AccessRead, Len: n, Reason: "unmapped address"}
	}
	off := addr - s.base
	return s.data[off : off+n : off+n], nil
}

// IsFault reports whether err is (or wraps) a *FaultError.
func IsFault(err error) bool {
	_, ok := AsFault(err)
	return ok
}

// AsFault extracts a *FaultError from err if present.
func AsFault(err error) (*FaultError, bool) {
	for err != nil {
		if fe, ok := err.(*FaultError); ok {
			return fe, true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return nil, false
		}
		err = u.Unwrap()
	}
	return nil, false
}

// roundUpPage rounds n up to the next multiple of PageSize.
func roundUpPage(n uint64) uint64 {
	return (n + PageSize - 1) &^ uint64(PageSize-1)
}

// RoundUpPage rounds n up to the next multiple of PageSize.
func RoundUpPage(n uint64) uint64 { return roundUpPage(n) }

// PageAlignDown rounds addr down to its page boundary.
func PageAlignDown(addr uint64) uint64 { return addr &^ uint64(PageSize-1) }

// PageAlignUp rounds addr up to the next page boundary.
func PageAlignUp(addr uint64) uint64 { return roundUpPage(addr) }
