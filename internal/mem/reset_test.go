package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestResetRestoresFreshState: after arbitrary mutation, Reset must
// return the space to a state indistinguishable from a freshly
// constructed one: break at the reserve, all pages zero and ProtRW,
// fault count cleared.
func TestResetRestoresFreshState(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	base := s.Base()

	// Mutate: stores, fills, protection changes, growth, faults.
	if err := s.Write(base+100, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Store64(base+PageSize+8, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(base+3*PageSize, 0xAA, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Mprotect(base+5*PageSize, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	grown, err := s.Sbrk(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.RawMemset(grown, 0xBB, PageSize); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckRead(base+5*PageSize, 8); err == nil {
		t.Fatal("expected fault on ProtNone page")
	}
	if s.Faults() == 0 {
		t.Fatal("fault not counted")
	}

	s.Reset()

	if s.Size() != DefaultReserve {
		t.Errorf("Size after Reset = %d, want %d", s.Size(), uint64(DefaultReserve))
	}
	if s.Faults() != 0 {
		t.Errorf("Faults after Reset = %d, want 0", s.Faults())
	}
	if n := s.DirtyPages(); n != 0 {
		t.Errorf("DirtyPages after Reset = %d, want 0", n)
	}
	// Every retained byte is zero and every retained page is ProtRW.
	all, err := s.Read(base, s.Size())
	if err != nil {
		t.Fatalf("full read after Reset: %v", err)
	}
	if !bytes.Equal(all, make([]byte, len(all))) {
		t.Error("nonzero bytes survived Reset")
	}
	for a := base; a < s.End(); a += PageSize {
		p, err := s.ProtAt(a)
		if err != nil {
			t.Fatal(err)
		}
		if p != ProtRW {
			t.Errorf("page %#x protection %v after Reset, want rw-", a, p)
		}
	}
}

// TestResetSbrkRegrowZeroed: memory regrown after a Reset must read as
// zero even though the backing capacity held prior contents.
func TestResetSbrkRegrowZeroed(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := s.Sbrk(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Memset(grown, 0xCC, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	regrown, err := s.Sbrk(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if regrown != grown {
		t.Fatalf("regrown at %#x, want deterministic %#x", regrown, grown)
	}
	data, err := s.Read(regrown, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != 0 {
			t.Fatalf("stale byte %#x at offset %d after Reset+Sbrk", b, i)
		}
	}
}

// TestResetDirtyProportional: Reset work tracks the dirty-page count,
// not the space size; a tiny touch on a large space dirties one page.
func TestResetDirtyProportional(t *testing.T) {
	s, err := NewSpace(Config{Reserve: 256 * PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(); n != 0 {
		t.Fatalf("fresh space has %d dirty pages", n)
	}
	if err := s.Store64(s.Base()+64, 1); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(); n != 1 {
		t.Errorf("one word store dirtied %d pages, want 1", n)
	}
	if err := s.Memset(s.Base()+10*PageSize, 1, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	if n := s.DirtyPages(); n != 4 {
		t.Errorf("after 3-page fill, %d dirty pages, want 4", n)
	}
	s.Reset()
	if n := s.DirtyPages(); n != 0 {
		t.Errorf("%d dirty pages after Reset", n)
	}
}

// TestResetDifferential: a reset space must be operationally
// indistinguishable from a fresh one — identical results (data, errors,
// fault addresses, fault counts) for a randomized operation sequence.
func TestResetDifferential(t *testing.T) {
	run := func(s *Space, seed int64) []byte {
		rng := rand.New(rand.NewSource(seed))
		var log []byte
		base := s.Base()
		for i := 0; i < 500; i++ {
			addr := base + uint64(rng.Intn(int(s.Size()+2*PageSize)))
			n := uint64(rng.Intn(300))
			switch rng.Intn(6) {
			case 0:
				buf := make([]byte, n)
				rng.Read(buf)
				err := s.Write(addr, buf)
				log = append(log, byte(errCode(err)))
			case 1:
				data, err := s.Read(addr, n)
				log = append(log, byte(errCode(err)))
				log = append(log, data...)
			case 2:
				err := s.Memset(addr, byte(rng.Intn(256)), n)
				log = append(log, byte(errCode(err)))
			case 3:
				v, err := s.Load64(addr)
				log = append(log, byte(errCode(err)), byte(v), byte(v>>8))
			case 4:
				pa := PageAlignDown(addr)
				err := s.Mprotect(pa, PageSize, Prot(rng.Intn(4)))
				log = append(log, byte(errCode(err)))
			case 5:
				if fe, ok := func() (*FaultError, bool) {
					_, err := s.Read(addr, n)
					return AsFault(err)
				}(); ok {
					log = append(log, byte(fe.Addr), byte(fe.Addr>>8), byte(fe.Addr>>16))
				}
			}
		}
		log = append(log, byte(s.Faults()))
		return log
	}

	fresh, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the recycled space with a different sequence, then Reset.
	run(recycled, 999)
	recycled.Reset()

	a := run(fresh, 42)
	b := run(recycled, 42)
	if !bytes.Equal(a, b) {
		t.Fatal("reset space diverged from fresh space on identical operations")
	}
}

func errCode(err error) int {
	if err == nil {
		return 0
	}
	if IsFault(err) {
		return 1
	}
	return 2
}

// TestResetAllocFree: the steady-state recycle path (Reset after
// bounded dirtying, plus regrowth into retained capacity) must not
// allocate.
func TestResetAllocFree(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the capacity beyond the reserve once.
	if _, err := s.Sbrk(8 * PageSize); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	base := s.Base()
	avg := testing.AllocsPerRun(100, func() {
		if err := s.Memset(base, 0x5A, 4*PageSize); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Sbrk(8 * PageSize); err != nil {
			t.Fatal(err)
		}
		s.Reset()
	})
	if avg != 0 {
		t.Errorf("recycle path allocates %.1f per run, want 0", avg)
	}
}
