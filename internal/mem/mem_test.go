package mem

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestNewSpaceDefaults(t *testing.T) {
	s := newTestSpace(t)
	if s.Base() != DefaultBase {
		t.Errorf("Base() = %#x, want %#x", s.Base(), uint64(DefaultBase))
	}
	if s.Size() != DefaultReserve {
		t.Errorf("Size() = %d, want %d", s.Size(), uint64(DefaultReserve))
	}
	if s.End() != DefaultBase+DefaultReserve {
		t.Errorf("End() = %#x, want %#x", s.End(), uint64(DefaultBase+DefaultReserve))
	}
}

func TestNewSpaceRejectsUnalignedBase(t *testing.T) {
	if _, err := NewSpace(Config{Base: PageSize + 1}); err == nil {
		t.Fatal("NewSpace accepted unaligned base")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newTestSpace(t)
	addr := s.Base() + 123
	want := []byte("heap therapy plus")
	if err := s.Write(addr, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := s.Read(addr, uint64(len(want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Read = %q, want %q", got, want)
	}
}

func TestNilAddressFaults(t *testing.T) {
	s := newTestSpace(t)
	_, err := s.Read(0, 1)
	fe, ok := AsFault(err)
	if !ok {
		t.Fatalf("Read(0) err = %v, want *FaultError", err)
	}
	if fe.Kind != AccessRead {
		t.Errorf("fault kind = %v, want read", fe.Kind)
	}
}

func TestOutOfRangeFaults(t *testing.T) {
	s := newTestSpace(t)
	if err := s.Write(s.End(), []byte{1}); !IsFault(err) {
		t.Errorf("Write past end err = %v, want fault", err)
	}
	// A range that starts mapped but runs off the end must fault too.
	if err := s.Write(s.End()-4, make([]byte, 8)); !IsFault(err) {
		t.Errorf("Write straddling end err = %v, want fault", err)
	}
}

func TestWrappingRangeFaults(t *testing.T) {
	s := newTestSpace(t)
	if err := s.CheckRead(^uint64(0)-2, 8); !IsFault(err) {
		t.Errorf("wrapping CheckRead err = %v, want fault", err)
	}
}

func TestMprotectGuardPage(t *testing.T) {
	s := newTestSpace(t)
	guard := s.Base() + 4*PageSize
	if err := s.Mprotect(guard, PageSize, ProtNone); err != nil {
		t.Fatalf("Mprotect: %v", err)
	}

	// Access to the page before the guard is fine.
	if err := s.Write(guard-8, make([]byte, 8)); err != nil {
		t.Fatalf("Write before guard: %v", err)
	}
	// Touching the guard faults at the exact guard address.
	err := s.Write(guard-4, make([]byte, 8))
	fe, ok := AsFault(err)
	if !ok {
		t.Fatalf("Write into guard err = %v, want fault", err)
	}
	if fe.Addr != guard {
		t.Errorf("fault addr = %#x, want guard start %#x", fe.Addr, guard)
	}
	if fe.Kind != AccessWrite {
		t.Errorf("fault kind = %v, want write", fe.Kind)
	}
	// Reads fault as well (overread protection).
	if _, err := s.Read(guard, 1); !IsFault(err) {
		t.Errorf("Read of guard err = %v, want fault", err)
	}

	// Unprotecting restores access, as the defense does on free().
	if err := s.Mprotect(guard, PageSize, ProtRW); err != nil {
		t.Fatalf("Mprotect restore: %v", err)
	}
	if err := s.Write(guard, []byte{42}); err != nil {
		t.Errorf("Write after unprotect: %v", err)
	}
}

func TestMprotectReadOnly(t *testing.T) {
	s := newTestSpace(t)
	page := s.Base() + 8*PageSize
	if err := s.Write(page, []byte("patch table")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Mprotect(page, PageSize, ProtRead); err != nil {
		t.Fatalf("Mprotect: %v", err)
	}
	if _, err := s.Read(page, 11); err != nil {
		t.Errorf("Read of read-only page: %v", err)
	}
	if err := s.Write(page, []byte{1}); !IsFault(err) {
		t.Errorf("Write to read-only page err = %v, want fault", err)
	}
}

func TestMprotectRejectsUnaligned(t *testing.T) {
	s := newTestSpace(t)
	if err := s.Mprotect(s.Base()+1, PageSize, ProtNone); err == nil {
		t.Error("Mprotect accepted unaligned address")
	}
	if err := s.Mprotect(s.Base(), PageSize+1, ProtNone); err == nil {
		t.Error("Mprotect accepted unaligned length")
	}
	if err := s.Mprotect(s.End(), PageSize, ProtNone); err == nil {
		t.Error("Mprotect accepted unmapped range")
	}
}

func TestSbrkGrowsSpace(t *testing.T) {
	s := newTestSpace(t)
	oldEnd := s.End()
	got, err := s.Sbrk(1) // rounds up to one page
	if err != nil {
		t.Fatalf("Sbrk: %v", err)
	}
	if got != oldEnd {
		t.Errorf("Sbrk returned %#x, want previous end %#x", got, oldEnd)
	}
	if s.End() != oldEnd+PageSize {
		t.Errorf("End after Sbrk = %#x, want %#x", s.End(), oldEnd+PageSize)
	}
	// New memory is zeroed and RW.
	b, err := s.Read(got, PageSize)
	if err != nil {
		t.Fatalf("Read new page: %v", err)
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("new page byte %d = %d, want 0", i, v)
		}
	}
}

func TestMemmoveOverlap(t *testing.T) {
	s := newTestSpace(t)
	addr := s.Base()
	if err := s.Write(addr, []byte("abcdefgh")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := s.Memmove(addr+2, addr, 6); err != nil {
		t.Fatalf("Memmove: %v", err)
	}
	got, err := s.Read(addr, 8)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "ababcdef" {
		t.Errorf("after overlap Memmove = %q, want %q", got, "ababcdef")
	}
}

func TestMemset(t *testing.T) {
	s := newTestSpace(t)
	addr := s.Base() + 64
	if err := s.Memset(addr, 0xAB, 100); err != nil {
		t.Fatalf("Memset: %v", err)
	}
	got, err := s.Read(addr, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, v := range got {
		if v != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, v)
		}
	}
}

func TestLoadStore64(t *testing.T) {
	s := newTestSpace(t)
	addr := s.Base() + 16
	const want = uint64(0xDEADBEEFCAFEF00D)
	if err := s.Store64(addr, want); err != nil {
		t.Fatalf("Store64: %v", err)
	}
	got, err := s.Load64(addr)
	if err != nil {
		t.Fatalf("Load64: %v", err)
	}
	if got != want {
		t.Errorf("Load64 = %#x, want %#x", got, want)
	}
	// Verify little-endian layout.
	b, _ := s.Read(addr, 1)
	if b[0] != 0x0D {
		t.Errorf("low byte = %#x, want 0x0D (little endian)", b[0])
	}
}

func TestRawAccessBypassesProtection(t *testing.T) {
	s := newTestSpace(t)
	page := s.Base() + 2*PageSize
	if err := s.Mprotect(page, PageSize, ProtNone); err != nil {
		t.Fatalf("Mprotect: %v", err)
	}
	if err := s.RawStore64(page, 0x1234); err != nil {
		t.Fatalf("RawStore64 on protected page: %v", err)
	}
	v, err := s.RawLoad64(page)
	if err != nil {
		t.Fatalf("RawLoad64 on protected page: %v", err)
	}
	if v != 0x1234 {
		t.Errorf("RawLoad64 = %#x, want 0x1234", v)
	}
	// But raw access still faults on unmapped addresses.
	if err := s.RawStore64(s.End(), 1); !IsFault(err) {
		t.Errorf("RawStore64 past end err = %v, want fault", err)
	}
}

func TestFaultCounting(t *testing.T) {
	s := newTestSpace(t)
	if s.Faults() != 0 {
		t.Fatalf("fresh space Faults() = %d, want 0", s.Faults())
	}
	_, _ = s.Read(0, 1)
	_ = s.Write(0, []byte{1})
	if s.Faults() != 2 {
		t.Errorf("Faults() = %d, want 2", s.Faults())
	}
}

func TestProtString(t *testing.T) {
	cases := []struct {
		p    Prot
		want string
	}{
		{ProtNone, "---"},
		{ProtRead, "r--"},
		{ProtWrite, "-w-"},
		{ProtRW, "rw-"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", uint8(c.p), got, c.want)
		}
	}
}

func TestFaultErrorMessage(t *testing.T) {
	fe := &FaultError{Addr: 0x1000, Kind: AccessWrite, Len: 8, Reason: "guard page"}
	msg := fe.Error()
	for _, want := range []string{"write", "0x1000", "guard page"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Errorf("FaultError message %q missing %q", msg, want)
		}
	}
}

func TestAsFaultUnwraps(t *testing.T) {
	fe := &FaultError{Addr: 1, Kind: AccessRead, Len: 1, Reason: "x"}
	wrapped := fmt.Errorf("interpreting op: %w", fe)
	got, ok := AsFault(wrapped)
	if !ok || got != fe {
		t.Errorf("AsFault(wrapped) = %v, %v; want original fault", got, ok)
	}
	if IsFault(errors.New("plain")) {
		t.Error("IsFault(plain error) = true, want false")
	}
}

func TestPageRounding(t *testing.T) {
	cases := []struct {
		in, up uint64
	}{
		{0, 0},
		{1, PageSize},
		{PageSize, PageSize},
		{PageSize + 1, 2 * PageSize},
	}
	for _, c := range cases {
		if got := RoundUpPage(c.in); got != c.up {
			t.Errorf("RoundUpPage(%d) = %d, want %d", c.in, got, c.up)
		}
	}
	if got := PageAlignDown(PageSize + 5); got != PageSize {
		t.Errorf("PageAlignDown = %d, want %d", got, uint64(PageSize))
	}
	if got := PageAlignUp(PageSize + 5); got != 2*PageSize {
		t.Errorf("PageAlignUp = %d, want %d", got, uint64(2*PageSize))
	}
}

// TestQuickWriteReadIdentity property-tests that any in-bounds write is
// read back verbatim.
func TestQuickWriteReadIdentity(t *testing.T) {
	s := newTestSpace(t)
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := s.Base() + uint64(off)
		if !s.Contains(addr, uint64(len(data))) {
			return true
		}
		if err := s.Write(addr, data); err != nil {
			return false
		}
		got, err := s.Read(addr, uint64(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickProtectionIsPageGranular property-tests that protecting one
// page never affects its neighbors.
func TestQuickProtectionIsPageGranular(t *testing.T) {
	s := newTestSpace(t)
	pages := s.Size() / PageSize
	f := func(pageIdx uint16) bool {
		p := uint64(pageIdx) % (pages - 2)
		p++ // keep a neighbor on each side
		addr := s.Base() + p*PageSize
		if err := s.Mprotect(addr, PageSize, ProtNone); err != nil {
			return false
		}
		defer func() { _ = s.Mprotect(addr, PageSize, ProtRW) }()
		okBefore := s.CheckWrite(addr-8, 8) == nil
		okAfter := s.CheckWrite(addr+PageSize, 8) == nil
		faulted := IsFault(s.CheckWrite(addr, 1))
		return okBefore && okAfter && faulted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRawAccessErrorPaths(t *testing.T) {
	s := newTestSpace(t)
	if _, err := s.RawRead(s.End(), 8); !IsFault(err) {
		t.Error("RawRead past end accepted")
	}
	if err := s.RawWrite(s.End(), []byte{1}); !IsFault(err) {
		t.Error("RawWrite past end accepted")
	}
	if err := s.RawMemset(s.End(), 0, 8); !IsFault(err) {
		t.Error("RawMemset past end accepted")
	}
	if _, err := s.RawLoad64(0); !IsFault(err) {
		t.Error("RawLoad64 of nil accepted")
	}
	if _, err := s.ProtAt(0); err == nil {
		t.Error("ProtAt of unmapped address accepted")
	}
}

func TestSbrkLimit(t *testing.T) {
	s := newTestSpace(t)
	if _, err := s.Sbrk(DefaultLimit + PageSize); err == nil {
		t.Error("Sbrk beyond the segment limit accepted")
	}
}

func TestMemmoveFaultPaths(t *testing.T) {
	s := newTestSpace(t)
	guard := s.Base() + 4*PageSize
	if err := s.Mprotect(guard, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	// Source inside the guard faults on read.
	if err := s.Memmove(s.Base(), guard, 8); !IsFault(err) {
		t.Error("Memmove from protected source accepted")
	}
	// Destination inside the guard faults on write.
	if err := s.Memmove(guard, s.Base(), 8); !IsFault(err) {
		t.Error("Memmove into protected destination accepted")
	}
}

func TestAccessKindString(t *testing.T) {
	if AccessRead.String() != "read" || AccessWrite.String() != "write" {
		t.Error("AccessKind strings wrong")
	}
	if AccessKind(99).String() == "" {
		t.Error("unknown AccessKind empty")
	}
}

func TestConfigLimitHonored(t *testing.T) {
	s, err := NewSpace(Config{Limit: 4 * PageSize, Reserve: 2 * PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sbrk(2 * PageSize); err != nil {
		t.Fatalf("Sbrk within limit: %v", err)
	}
	if _, err := s.Sbrk(PageSize); err == nil {
		t.Error("Sbrk beyond Config.Limit accepted")
	}
	// Reserve above limit is rejected at construction.
	if _, err := NewSpace(Config{Limit: PageSize, Reserve: 2 * PageSize}); err == nil {
		t.Error("Reserve > Limit accepted")
	}
}
