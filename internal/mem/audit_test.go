package mem

import (
	"strings"
	"testing"
)

// TestAuditCleanSpace: a fresh space and a lightly used one must audit
// clean — stores and protection changes mark their pages dirty, which
// is exactly what keeps the audit invariant satisfiable.
func TestAuditCleanSpace(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("fresh space: %v", err)
	}
	base, err := s.Sbrk(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(base+100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Mprotect(base+PageSize, PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("used space: %v", err)
	}
	s.Reset()
	if err := s.Audit(); err != nil {
		t.Fatalf("after Reset: %v", err)
	}
}

// TestAuditCatchesSilentStore: clearing a page's dirty bit after a
// store models the bug class the auditor exists for — a write path
// that forgets markDirty (Reset would then leak stale bytes).
func TestAuditCatchesSilentStore(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(s.Base()+5, []byte{0xAA}); err != nil {
		t.Fatal(err)
	}
	for i := range s.dirty {
		s.dirty[i] = 0
	}
	err = s.Audit()
	if err == nil || !strings.Contains(err.Error(), "nonzero byte") {
		t.Fatalf("audit = %v, want nonzero-byte violation", err)
	}
}

// TestAuditCatchesSilentProtect: same for a protection change that
// does not dirty the page.
func TestAuditCatchesSilentProtect(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Mprotect(s.Base(), PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	for i := range s.dirty {
		s.dirty[i] = 0
	}
	err = s.Audit()
	if err == nil || !strings.Contains(err.Error(), "prot") {
		t.Fatalf("audit = %v, want prot violation", err)
	}
}

// TestAuditCatchesTableSkew: structural divergence between the mapped
// length and the bookkeeping tables is reported.
func TestAuditCatchesTableSkew(t *testing.T) {
	s, err := NewSpace(Config{})
	if err != nil {
		t.Fatal(err)
	}
	save := s.prot
	s.prot = s.prot[:len(s.prot)-1]
	if err := s.Audit(); err == nil {
		t.Fatal("audit passed with truncated prot table")
	}
	s.prot = save

	saveDirty := s.dirty
	s.dirty = s.dirty[:0]
	if err := s.Audit(); err == nil {
		t.Fatal("audit passed with truncated dirty bitmap")
	}
	s.dirty = saveDirty

	s.data = s.data[:len(s.data)-1]
	if err := s.Audit(); err == nil {
		t.Fatal("audit passed with unaligned mapped length")
	}
}
