package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// --- differential: word kernels vs their naive predecessors -----------------

// TestDifferentialLoadStore64 proves the binary.LittleEndian word
// kernels agree bit-for-bit with the byte-loop reference on random
// addresses and values, in both directions.
func TestDifferentialLoadStore64(t *testing.T) {
	s := newTestSpace(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		addr := s.Base() + uint64(rng.Intn(int(s.Size()-8)))
		v := rng.Uint64()
		s.store64(addr, v)
		if got := s.refLoad64(addr); got != v {
			t.Fatalf("store64 then refLoad64(%#x) = %#x, want %#x", addr, got, v)
		}
		v2 := rng.Uint64()
		s.refStore64(addr, v2)
		if got := s.load64(addr); got != v2 {
			t.Fatalf("refStore64 then load64(%#x) = %#x, want %#x", addr, got, v2)
		}
	}
}

// TestDifferentialCheck drives check and refCheck with identical
// random protection layouts and access ranges on twin spaces and
// asserts identical outcomes: same error presence, same fault address,
// kind, length, and reason, and the same fault counters.
func TestDifferentialCheck(t *testing.T) {
	fast := newTestSpace(t)
	ref := newTestSpace(t)
	rng := rand.New(rand.NewSource(2))
	prots := []Prot{ProtNone, ProtRead, ProtWrite, ProtRW}
	for p := uint64(0); p < fast.Size()/PageSize; p++ {
		pr := prots[rng.Intn(len(prots))]
		addr := fast.Base() + p*PageSize
		if err := fast.Mprotect(addr, PageSize, pr); err != nil {
			t.Fatal(err)
		}
		if err := ref.Mprotect(addr, PageSize, pr); err != nil {
			t.Fatal(err)
		}
	}
	kinds := []AccessKind{AccessRead, AccessWrite}
	for i := 0; i < 20000; i++ {
		var addr uint64
		switch rng.Intn(10) {
		case 0:
			addr = uint64(rng.Intn(1 << 21)) // often below base or past end
		case 1:
			addr = ^uint64(0) - uint64(rng.Intn(64)) // wraparound candidates
		default:
			addr = fast.Base() + uint64(rng.Intn(int(fast.Size()+PageSize)))
		}
		n := uint64(rng.Intn(3 * PageSize))
		if rng.Intn(20) == 0 {
			n = uint64(rng.Intn(8)) // tiny, common case
		}
		kind := kinds[rng.Intn(2)]
		ferr := fast.check(addr, n, kind)
		rerr := ref.refCheck(addr, n, kind)
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("check(%#x, %d, %v) = %v, refCheck = %v", addr, n, kind, ferr, rerr)
		}
		if ferr != nil {
			ff, _ := AsFault(ferr)
			rf, _ := AsFault(rerr)
			if *ff != *rf {
				t.Fatalf("check(%#x, %d, %v) fault %+v, refCheck fault %+v", addr, n, kind, ff, rf)
			}
		}
		if fast.Faults() != ref.Faults() {
			t.Fatalf("fault counters diverged after check(%#x, %d, %v): fast %d, ref %d",
				addr, n, kind, fast.Faults(), ref.Faults())
		}
	}
}

// TestDifferentialFill proves the doubling fill equals the byte-loop
// reference for every fill byte across a spread of lengths.
func TestDifferentialFill(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 7, 8, 15, 64, 255, 4096, 10000} {
		b := byte(rng.Intn(256))
		got := make([]byte, n)
		want := make([]byte, n)
		rng.Read(got)
		copy(want, got)
		fillBytes(got, b)
		refFill(want, b)
		if !bytes.Equal(got, want) {
			t.Fatalf("fillBytes(len %d, %#x) diverges from refFill", n, b)
		}
	}
}

// TestDifferentialMemset compares Memset on twin spaces: one uses the
// native fill, the other the reference fill over a writable view.
func TestDifferentialMemset(t *testing.T) {
	fast := newTestSpace(t)
	ref := newTestSpace(t)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		addr := fast.Base() + uint64(rng.Intn(int(fast.Size()-PageSize)))
		n := uint64(rng.Intn(2 * PageSize))
		if !fast.Contains(addr, n) {
			continue
		}
		b := byte(rng.Intn(256))
		if err := fast.Memset(addr, b, n); err != nil {
			t.Fatal(err)
		}
		region, err := ref.WritableView(addr, n)
		if err != nil {
			t.Fatal(err)
		}
		refFill(region, b)
		fd, _ := fast.RawView(fast.Base(), fast.Size())
		rd, _ := ref.RawView(ref.Base(), ref.Size())
		if !bytes.Equal(fd, rd) {
			t.Fatalf("Memset(%#x, %#x, %d) diverges from reference fill", addr, b, n)
		}
	}
}

// --- views -------------------------------------------------------------------

func TestViewMatchesRead(t *testing.T) {
	s := newTestSpace(t)
	if err := s.Write(s.Base()+100, []byte("hello, view")); err != nil {
		t.Fatal(err)
	}
	view, err := s.View(s.Base()+100, 11)
	if err != nil {
		t.Fatal(err)
	}
	read, err := s.Read(s.Base()+100, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(view, read) {
		t.Fatalf("View = %q, Read = %q", view, read)
	}
	// A view respects protection like Read does.
	if err := s.Mprotect(s.Base(), PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(s.Base()+100, 11); !IsFault(err) {
		t.Errorf("View of PROT_NONE page err = %v, want fault", err)
	}
	if _, err := s.RawView(s.Base()+100, 11); err != nil {
		t.Errorf("RawView of PROT_NONE page err = %v, want nil", err)
	}
}

func TestWritableViewWritesThrough(t *testing.T) {
	s := newTestSpace(t)
	view, err := s.WritableView(s.Base()+64, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(view, "abcd")
	got, err := s.Read(s.Base()+64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcd" {
		t.Fatalf("after WritableView write, Read = %q", got)
	}
	if err := s.Mprotect(s.Base(), PageSize, ProtRead); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WritableView(s.Base()+64, 4); !IsFault(err) {
		t.Errorf("WritableView of read-only page err = %v, want fault", err)
	}
}

func TestRawViewBounds(t *testing.T) {
	s := newTestSpace(t)
	if _, err := s.RawView(s.Base()-8, 16); !IsFault(err) {
		t.Errorf("RawView below base err = %v, want fault", err)
	}
	if _, err := s.RawView(s.End()-8, 16); !IsFault(err) {
		t.Errorf("RawView past end err = %v, want fault", err)
	}
}

func TestRawWriteByte(t *testing.T) {
	s := newTestSpace(t)
	if err := s.Mprotect(s.Base(), PageSize, ProtNone); err != nil {
		t.Fatal(err)
	}
	if err := s.RawWriteByte(s.Base()+5, 0x7F); err != nil {
		t.Fatal(err)
	}
	got, err := s.RawRead(s.Base()+5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x7F {
		t.Fatalf("RawWriteByte stored %#x", got[0])
	}
	if err := s.RawWriteByte(s.Base()-1, 0); !IsFault(err) {
		t.Errorf("RawWriteByte below base err = %v, want fault", err)
	}
}

func TestRawMemmove(t *testing.T) {
	s := newTestSpace(t)
	if err := s.Write(s.Base(), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	// Overlapping forward copy keeps memmove semantics.
	if err := s.RawMemmove(s.Base()+2, s.Base(), 8); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(s.Base(), 10)
	if string(got) != "0101234567" {
		t.Fatalf("overlapping RawMemmove = %q", got)
	}
	if err := s.RawMemmove(s.Base(), s.Base()-16, 8); !IsFault(err) {
		t.Errorf("RawMemmove from unmapped src err = %v, want fault", err)
	}
}

// --- zero-allocation guarantees ---------------------------------------------

// TestMemKernelAllocs pins the zero-allocation guarantee of the
// steady-state kernels.
func TestMemKernelAllocs(t *testing.T) {
	s := newTestSpace(t)
	buf := make([]byte, 256)
	addr := s.Base() + 128
	cases := []struct {
		name string
		fn   func()
	}{
		{"Load64", func() {
			if _, err := s.Load64(addr); err != nil {
				t.Fatal(err)
			}
		}},
		{"Store64", func() {
			if err := s.Store64(addr, 0xDEADBEEF); err != nil {
				t.Fatal(err)
			}
		}},
		{"Memset", func() {
			if err := s.Memset(addr, 0xAA, 256); err != nil {
				t.Fatal(err)
			}
		}},
		{"Memmove", func() {
			if err := s.Memmove(addr+512, addr, 256); err != nil {
				t.Fatal(err)
			}
		}},
		{"Write", func() {
			if err := s.Write(addr, buf); err != nil {
				t.Fatal(err)
			}
		}},
		{"ReadInto", func() {
			if err := s.ReadInto(addr, buf); err != nil {
				t.Fatal(err)
			}
		}},
		{"View", func() {
			if _, err := s.View(addr, 256); err != nil {
				t.Fatal(err)
			}
		}},
		{"RawView", func() {
			if _, err := s.RawView(addr, 256); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
				t.Errorf("%s allocates %.1f per op, want 0", c.name, avg)
			}
		})
	}
}

// --- benchmarks ---------------------------------------------------------------

// BenchmarkMemKernels measures the per-operation cost of the space's
// hot-path kernels.
func BenchmarkMemKernels(b *testing.B) {
	s, err := NewSpace(Config{})
	if err != nil {
		b.Fatal(err)
	}
	addr := s.Base() + 128
	b.Run("Load64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Load64(addr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Store64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := s.Store64(addr, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Memset4KiB", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := s.Memset(addr, byte(i), 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Memmove4KiB", func(b *testing.B) {
		b.SetBytes(4096)
		for i := 0; i < b.N; i++ {
			if err := s.Memmove(addr+8192, addr, 4096); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("View", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.View(addr, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CheckRead", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := s.CheckRead(addr, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
}
